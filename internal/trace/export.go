package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"kvell/internal/env"
	"kvell/internal/stats"
)

// Chrome trace-event export (the JSON Array Format understood by Perfetto
// and chrome://tracing). Track layout:
//
//	pid 1          "cores":       one thread per simulated core
//	pid 2          "ops":         sampled requests, packed into lanes so
//	                              concurrent requests land on separate rows;
//	                              component and named spans nest inside
//	pid 3          "maintenance": one thread per background job kind, with
//	                              the jobs' own CPU/lock spans nested inside
//	pid 10+d       "disk d":      one thread per device channel
//
// Timestamps are virtual microseconds since simulation start; a slow client
// op visibly overlaps the compaction/flush slice that delayed it.
const (
	pidCores       = 1
	pidOps         = 2
	pidMaintenance = 3
	pidDiskBase    = 10
)

type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]uint64 `json:"args,omitempty"`
}

func usec(t env.Time) float64 { return float64(t) / 1e3 }

// WriteChrome writes the retained spans as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var events []chromeEvent

	// Lane-pack the sampled op slices: each request takes the lowest lane
	// whose previous occupant ended before it starts, so overlapping
	// requests never share a track row. Deterministic: spans are scanned in
	// retained order after a stable sort by start time.
	type opSlice struct {
		span Span
		idx  int
	}
	var ops []opSlice
	for i, s := range t.spans {
		if s.Kind == KindOp {
			ops = append(ops, opSlice{s, i})
		}
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].span.Start != ops[j].span.Start {
			return ops[i].span.Start < ops[j].span.Start
		}
		return ops[i].idx < ops[j].idx
	})
	opLane := make(map[uint64]int, len(ops))
	var laneEnd []env.Time
	for _, o := range ops {
		lane := -1
		for l, e := range laneEnd {
			if e <= o.span.Start {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = o.span.End
		opLane[o.span.ID] = lane
	}

	// Background job kinds -> maintenance thread, in order of first
	// appearance (deterministic: t.bg is in completion order).
	bgTid := make(map[uint64]int, len(t.bg))
	kindTid := make(map[string]int)
	var kindNames []string
	for _, s := range t.bg {
		tid, ok := kindTid[s.Name]
		if !ok {
			tid = len(kindNames)
			kindTid[s.Name] = tid
			kindNames = append(kindNames, s.Name)
		}
		bgTid[s.ID] = tid
	}

	emit := func(name string, pid, tid int, start, end env.Time, id uint64, withID bool) {
		ev := chromeEvent{Name: name, Ph: "X", Ts: usec(start), Dur: usec(end - start), Pid: pid, Tid: tid}
		if withID {
			ev.Args = map[string]uint64{"req": id}
		}
		events = append(events, ev)
	}

	maxCore, maxDisk := 0, -1
	diskChans := map[int]int{}
	route := func(s Span) {
		switch s.Kind {
		case KindOp:
			emit(s.Name, pidOps, opLane[s.ID], s.Start, s.End, s.ID, true)
		case KindComp:
			name := "comp"
			if s.Comp >= 0 && int(s.Comp) < len(CompNames) {
				name = CompNames[s.Comp]
			}
			if s.Bg {
				emit(name, pidMaintenance, bgTid[s.ID], s.Start, s.End, 0, false)
			} else {
				emit(name, pidOps, opLane[s.ID], s.Start, s.End, 0, false)
			}
		case KindNamed:
			if s.Bg {
				emit(s.Name, pidMaintenance, bgTid[s.ID], s.Start, s.End, 0, false)
			} else {
				emit(s.Name, pidOps, opLane[s.ID], s.Start, s.End, 0, false)
			}
		case KindBg:
			emit(s.Name, pidMaintenance, bgTid[s.ID], s.Start, s.End, s.ID, false)
		case KindCore:
			if int(s.Track) > maxCore {
				maxCore = int(s.Track)
			}
			emit("run", pidCores, int(s.Track), s.Start, s.End, s.ID, !s.Bg)
		case KindDev:
			d := int(s.Disk)
			if d > maxDisk {
				maxDisk = d
			}
			if int(s.Track) > diskChans[d] {
				diskChans[d] = int(s.Track)
			}
			emit("io", pidDiskBase+d, int(s.Track), s.Start, s.End, s.ID, !s.Bg)
		}
	}
	for _, s := range t.spans {
		route(s)
	}
	for _, s := range t.bg {
		route(s)
	}

	// Process/thread name metadata, written as raw objects alongside the
	// marshalled events (metadata args hold strings, the event args above
	// hold numbers; mixing the two in one struct would force map[string]any).
	var metas []string
	addMeta := func(pid, tid int, ph, name string) {
		if tid < 0 {
			metas = append(metas, fmt.Sprintf(
				`{"name":%q,"ph":"M","pid":%d,"args":{"name":%q}}`, ph, pid, name))
			return
		}
		metas = append(metas, fmt.Sprintf(
			`{"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, ph, pid, tid, name))
	}
	addMeta(pidCores, -1, "process_name", "cores")
	for i := 0; i <= maxCore; i++ {
		addMeta(pidCores, i, "thread_name", fmt.Sprintf("core %d", i))
	}
	addMeta(pidOps, -1, "process_name", "ops")
	for i := range laneEnd {
		addMeta(pidOps, i, "thread_name", fmt.Sprintf("ops lane %d", i))
	}
	addMeta(pidMaintenance, -1, "process_name", "maintenance")
	for i, name := range kindNames {
		addMeta(pidMaintenance, i, "thread_name", name)
	}
	// Disk ids seen, in ascending order (map iteration is unordered).
	var disks []int
	for d := range diskChans {
		disks = append(disks, d)
	}
	sort.Ints(disks)
	for _, d := range disks {
		addMeta(pidDiskBase+d, -1, "process_name", fmt.Sprintf("disk %d", d))
		for ch := 0; ch <= diskChans[d]; ch++ {
			addMeta(pidDiskBase+d, ch, "thread_name", fmt.Sprintf("chan %d", ch))
		}
	}

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	writeRaw := func(raw []byte) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := w.Write(raw)
		return err
	}
	for _, m := range metas {
		if err := writeRaw([]byte(m)); err != nil {
			return err
		}
	}
	for _, ev := range events {
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if err := writeRaw(raw); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// WriteBreakdownTable writes the per-component latency table: each
// component's share of total measured time and its per-request distribution.
func (t *Tracer) WriteBreakdownTable(w io.Writer) {
	totalSum := 0.0
	for i := 0; i < NumComponents; i++ {
		totalSum += t.breakdown.Sum(i)
	}
	fmt.Fprintf(w, "  %-12s %7s %10s %10s %10s %10s %10s\n",
		"component", "share", "mean", "p50", "p99", "p99.9", "max")
	for i := 0; i < NumComponents; i++ {
		h := t.breakdown.Hist(i)
		share := 0.0
		if totalSum > 0 {
			share = t.breakdown.Sum(i) / totalSum
		}
		fmt.Fprintf(w, "  %-12s %6.1f%% %10s %10s %10s %10s %10s\n",
			t.breakdown.Name(i), share*100,
			stats.FmtDur(h.Mean()), stats.FmtDur(h.Percentile(0.50)),
			stats.FmtDur(h.Percentile(0.99)), stats.FmtDur(h.Percentile(0.999)),
			stats.FmtDur(h.Max()))
	}
	fmt.Fprintf(w, "  %-12s %7s %10s %10s %10s %10s %10s\n",
		"end-to-end", "100%",
		stats.FmtDur(t.total.Mean()), stats.FmtDur(t.total.Percentile(0.50)),
		stats.FmtDur(t.total.Percentile(0.99)), stats.FmtDur(t.total.Percentile(0.999)),
		stats.FmtDur(t.total.Max()))
}
