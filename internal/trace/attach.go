package trace

import (
	"kvell/internal/env"
	"kvell/internal/sim"
)

// FromCtx returns the trace context attached to the thread, or nil. All Ctx
// methods are nil-safe, so callers instrument unconditionally:
//
//	trace.FromCtx(c).Add(trace.CompStall, t0, c.Now())
func FromCtx(c env.Ctx) *Ctx {
	if c == nil {
		return nil
	}
	tc, _ := c.Trace().(*Ctx)
	return tc
}

// Attach wires the tracer into a simulation's instrumentation hooks: CPU
// bursts (service + core-queue time), per-core service slices, and mutex
// acquire waits, each attributed to whatever trace context the running proc
// carries. Call it after sim.NewEnv and before the engine is built (mutexes
// copy the hook at creation). All hooks are observational only — they never
// schedule events, charge CPU, or draw randomness — so the simulated
// schedule is bit-identical with tracing on or off.
func Attach(t *Tracer, e *sim.Env) {
	if t == nil {
		return
	}
	e.OnMutexWait = func(p *sim.Proc, start, end env.Time) {
		if tc, ok := p.Trace().(*Ctx); ok {
			tc.Add(CompLock, start, end)
		}
	}
	e.CPUs.OnUse = func(pr *sim.Proc, arrive, done, cpu env.Time) {
		if tc, ok := pr.Trace().(*Ctx); ok {
			tc.AddCPU(arrive, done, cpu)
		}
	}
	e.CPUs.Station().OnAssign = func(server int, start, end env.Time) {
		// Per-core occupancy slices for the Chrome trace's core tracks. Only
		// procs carrying a sampled context emit slices, keeping the trace
		// bounded; the running proc is nil for scheduler-context bookings.
		if p := e.S.Running(); p != nil {
			if tc, ok := p.Trace().(*Ctx); ok {
				tc.AddCore(server, start, end)
			}
		}
	}
}
