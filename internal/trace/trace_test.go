package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kvell/internal/env"
)

// TestNilSafety: a nil tracer and nil contexts must make every call a no-op
// (the tracing-disabled fast path takes these branches on every request).
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	c := tr.Begin(0, 0)
	if c != nil {
		t.Fatal("nil tracer returned a context")
	}
	c.Add(CompCPU, 0, 10)
	c.AddCPU(0, 10, 5)
	c.AddCore(0, 0, 10)
	c.AddDev(0, 0, 0, 5, 10)
	c.MarkQueue(0)
	c.EndQueue(10)
	c.Span("index", 0, 10)
	if c.Sampled() {
		t.Fatal("nil context claims sampled")
	}
	tr.Finish(c, 10)
	bc := tr.BeginBg("flush", 0)
	tr.FinishBg(bc, 10)
	tr.AddBg("devspike", 0, 10)
	if tr.OutlierMaintenance() != nil {
		t.Fatal("nil tracer returned maintenance")
	}
}

// TestSampling: sampling is 1-in-N by sequence number; unsampled requests
// still feed the breakdown but retain no spans.
func TestSampling(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 8; i++ {
		c := tr.Begin(0, env.Time(i*100))
		if got, want := c.Sampled(), i%4 == 0; got != want {
			t.Errorf("request %d: sampled=%v want %v", i, got, want)
		}
		c.Add(CompCPU, env.Time(i*100), env.Time(i*100+50))
		tr.Finish(c, env.Time(i*100+50))
	}
	if tr.Finished() != 8 || tr.SampledCount() != 2 {
		t.Fatalf("finished=%d sampled=%d, want 8/2", tr.Finished(), tr.SampledCount())
	}
	if got := tr.Breakdown().Hist(CompCPU).Count(); got != 8 {
		t.Fatalf("breakdown saw %d requests, want 8 (sampling must not affect counters)", got)
	}
	// sampleEvery=0 disables span retention entirely.
	tr0 := NewTracer(0)
	c := tr0.Begin(0, 0)
	if c.Sampled() {
		t.Fatal("sampleEvery=0 sampled a request")
	}
	c.Add(CompCPU, 0, 10)
	tr0.Finish(c, 10)
	if len(tr0.Spans()) != 0 {
		t.Fatal("sampleEvery=0 retained spans")
	}
	if tr0.Finished() != 1 {
		t.Fatal("sampleEvery=0 dropped the counter")
	}
}

// TestComponentAccounting: CompOther is the exact remainder, and AddCPU
// splits wall time into run-queue wait plus service.
func TestComponentAccounting(t *testing.T) {
	tr := NewTracer(1)
	c := tr.Begin(1, 1000)
	c.EndQueue(1100)         // queue 100 (qMark stamped by Begin)
	c.AddCPU(1100, 1400, 50) // cpu-queue 250, cpu 50
	c.AddDev(0, 2, 1400, 1500, 1900)
	tr.Finish(c, 2000)
	b := tr.Breakdown()
	want := map[int]env.Time{
		CompQueue: 100, CompCPUQ: 250, CompCPU: 50,
		CompDevQueue: 100, CompDevService: 400, CompOther: 100,
	}
	for comp, w := range want {
		if got := env.Time(b.Sum(comp)); got != w {
			t.Errorf("%s: sum %d want %d", CompNames[comp], got, w)
		}
	}
	out := tr.Outlier()
	if out.Total != 1000 || out.Coverage < 0.89 || out.Coverage > 0.91 {
		t.Errorf("outlier total=%d coverage=%v, want 1000 and 0.9", out.Total, out.Coverage)
	}
}

// TestUnionCoverage: overlapping spans (named annotations inside component
// windows) must not inflate coverage past 100%.
func TestUnionCoverage(t *testing.T) {
	spans := []Span{
		{Start: 0, End: 60},
		{Start: 10, End: 50}, // fully inside the first
		{Start: 40, End: 80}, // overlaps the first's tail
	}
	if got := unionCovered(spans, 0, 100); got != 80 {
		t.Fatalf("union covered %d, want 80", got)
	}
	tr := NewTracer(1)
	c := tr.Begin(0, 0)
	c.Add(CompCPU, 0, 100)
	c.Span("index", 20, 80) // annotation overlapping the CPU window
	tr.Finish(c, 100)
	if _, mean := tr.Coverage(); mean != 1.0 {
		t.Fatalf("coverage %v, want exactly 1.0", mean)
	}
}

// TestDigest: the digest is a pure function of the recorded activity —
// identical for identical runs, different when any request differs.
func TestDigest(t *testing.T) {
	mk := func(end env.Time) uint64 {
		tr := NewTracer(2)
		for i := 0; i < 4; i++ {
			c := tr.Begin(i%2, env.Time(i)*100)
			c.Add(CompCPU, env.Time(i)*100, env.Time(i)*100+30)
			tr.Finish(c, env.Time(i)*100+end)
		}
		tr.AddBg("flush", 50, 90)
		return tr.Digest()
	}
	if mk(40) != mk(40) {
		t.Fatal("identical activity produced different digests")
	}
	if mk(40) == mk(41) {
		t.Fatal("different activity produced the same digest")
	}
}

// TestOutlierMaintenance: bg jobs overlapping the worst request are named;
// device spikes are excluded.
func TestOutlierMaintenance(t *testing.T) {
	tr := NewTracer(1)
	c := tr.Begin(0, 1000)
	c.Add(CompStall, 1000, 1900)
	tr.Finish(c, 2000)

	bc := tr.BeginBg("compaction", 500)
	tr.FinishBg(bc, 1500) // overlaps
	tr.AddBg("devspike", 1200, 1300)
	tr.AddBg("flush", 3000, 4000) // after the outlier ended

	m := tr.OutlierMaintenance()
	if len(m) != 1 || m[0] != "compaction" {
		t.Fatalf("maintenance = %v, want [compaction]", m)
	}
}

// TestChromeExportSynthetic: the exporter emits valid JSON with op lanes,
// core, disk, and maintenance tracks from a hand-built trace.
func TestChromeExportSynthetic(t *testing.T) {
	tr := NewTracer(1)
	tr.OpNames = []string{"get", "update"}
	a := tr.Begin(0, 0)
	a.Add(CompCPU, 0, 50)
	a.AddCore(3, 0, 50)
	a.AddDev(1, 2, 50, 60, 90)
	tr.Finish(a, 100)
	b := tr.Begin(1, 40) // overlaps a: must land on a second lane
	b.Add(CompCPU, 40, 80)
	tr.Finish(b, 120)
	bc := tr.BeginBg("flush", 10)
	bc.Add(CompCPU, 10, 30)
	tr.FinishBg(bc, 60)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`"ops lane 0"`, `"ops lane 1"`, `"core 3"`, `"disk 1"`, `"flush"`, `"get"`, `"update"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
}
