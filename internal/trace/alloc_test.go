package trace

import (
	"testing"

	"kvell/internal/env"
)

// TestAllocBudgetDisabled pins the tracing-off fast path at zero
// allocations: every request runs the nil-tracer branches, so a disabled
// tracer must cost nothing (the PR-3 zero-allocation data plane budgets
// include these calls).
func TestAllocBudgetDisabled(t *testing.T) {
	var tr *Tracer
	now := env.Time(0)
	if n := testing.AllocsPerRun(1000, func() {
		c := tr.Begin(0, now)
		c.EndQueue(now + 10)
		c.AddCPU(now+10, now+40, 20)
		c.AddDev(0, 1, now+40, now+50, now+90)
		c.Span("index", now, now+5)
		tr.Finish(c, now+100)
		tr.AddBg("devspike", now, now+10)
		now += 100
	}); n != 0 {
		t.Errorf("disabled tracing allocates %v per request, want 0", n)
	}
}

// TestAllocBudgetUnsampled pins the counters-only path (enabled tracer, the
// request not in the sample) at zero steady-state allocations: contexts are
// pooled and unsampled requests retain no spans.
func TestAllocBudgetUnsampled(t *testing.T) {
	tr := NewTracer(1 << 30) // request 0 is sampled; warm it up first
	c := tr.Begin(0, 0)
	tr.Finish(c, 10)
	now := env.Time(100)
	if n := testing.AllocsPerRun(1000, func() {
		c := tr.Begin(1, now)
		c.EndQueue(now + 10)
		c.AddCPU(now+10, now+40, 20)
		c.AddDev(0, 1, now+40, now+50, now+90)
		tr.Finish(c, now+100)
		now += 100
	}); n != 0 {
		t.Errorf("unsampled tracing allocates %v per request, want 0", n)
	}
}

// TestAllocBudgetSampled bounds the sampled path: span retention appends to
// growing slices, so it cannot be free, but the amortized cost per sampled
// request must stay small and flat.
func TestAllocBudgetSampled(t *testing.T) {
	tr := NewTracer(1)
	now := env.Time(0)
	n := testing.AllocsPerRun(2000, func() {
		c := tr.Begin(0, now)
		c.EndQueue(now + 10)
		c.AddCPU(now+10, now+40, 20)
		c.AddCore(2, now+20, now+40)
		c.AddDev(0, 1, now+40, now+50, now+90)
		c.Span("index", now+10, now+15)
		tr.Finish(c, now+100)
		now += 100
	})
	if n > 4 {
		t.Errorf("sampled tracing allocates %v per request, want amortized <= 4", n)
	}
}
