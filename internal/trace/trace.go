// Package trace is the simulator's deterministic observability layer: it
// decomposes every request's end-to-end latency into components (queue wait,
// CPU service, run-queue wait, lock wait, write stalls, device queue, device
// service) and records virtual-time spans for a deterministic sample of
// requests plus every background maintenance job, so a slow operation can be
// attributed to the exact compaction/flush/checkpoint/eviction that delayed
// it — the evidence behind the paper's Figure 2.
//
// Everything here is purely observational: tracing schedules no events,
// charges no CPU, draws no randomness, and takes no locks, so the simulated
// schedule is bit-identical with tracing on or off (the golden digests hold
// in both modes). All timestamps are virtual (env.Time from the sim clock);
// the tracetime lint analyzer enforces that this package never sees the wall
// clock. Sampling is by request sequence number (1 in SampleEvery), never by
// wall time or math/rand, so the sampled set is a pure function of the seed.
//
// A nil *Tracer and a nil *Ctx are valid everywhere and make every method a
// no-op, keeping the tracing-disabled hot path allocation free.
package trace

import (
	"sort"

	"kvell/internal/env"
	"kvell/internal/stats"
)

// Latency components. The primary components (everything before CompOther)
// are designed to be disjoint in time, so their sum approximates the op's
// end-to-end latency; CompOther is the derived remainder. Known small
// overlap: a condition-variable wait inside a stall window re-acquires its
// mutex, which can double-count a sliver of CompLock inside CompStall —
// coverage is therefore computed from the union of span intervals, which
// overlapping spans cannot inflate.
const (
	CompQueue      = iota // engine queue dwell (submit -> worker dequeue, completion -> continuation)
	CompCPU               // CPU service (Pool.Use busy time)
	CompCPUQ              // CPU run-queue wait (Pool.Use wall time beyond service)
	CompLock              // contended mutex acquisition
	CompStall             // engine write stalls (memtable rotation, dirty-page stalls, L0 slowdown)
	CompDevQueue          // device queue wait (submit -> service start)
	CompDevService        // device service time
	CompAbsorb            // held in the write-absorption buffer awaiting group commit
	CompHotCache          // hot-key record-cache probe and value copy on a tiered hit
	CompNet               // on the wire: network link queue, transmit and propagation
	CompReplicate         // locally durable, awaiting follower replication acks
	CompOther             // remainder of end-to-end latency not booked above
	NumComponents
)

// CompNames names the components, indexed by the constants above.
var CompNames = [NumComponents]string{
	"queue", "cpu", "cpu-queue", "lock", "stall", "dev-queue", "dev-service", "absorb", "hotcache", "net", "replicate", "other",
}

// Event counters folded into the breakdown (see stats.Breakdown.AddCounters):
// monotonic tallies with no duration, recorded per finished tracer.
const (
	CtrHotHit     = iota // request served from the hot-key cache
	CtrHotMiss           // hot-key cache probed and missed
	CtrHotPromote        // record promoted into the hot tier
	CtrHotDemote         // record demoted to make room
	NumCounters
)

// CtrNames names the counters, indexed by the constants above.
var CtrNames = [NumCounters]string{
	"hot-hit", "hot-miss", "hot-promote", "hot-demote",
}

// Span kinds.
const (
	KindOp    = iota // one traced request, [issue, done)
	KindComp         // a component interval of a request or background job
	KindNamed        // an engine-internal named interval (index lookup, WAL append)
	KindBg           // one background maintenance job (flush, compaction, ...)
	KindCore         // occupancy of one simulated core
	KindDev          // occupancy of one device channel
)

// Span is one virtual-time interval. ID is the owning request's sequence
// number (or the background job's id when Bg is set); Track carries the core
// or device-channel index for KindCore/KindDev.
type Span struct {
	Kind  uint8
	Comp  int8 // component index for KindComp, -1 otherwise
	Bg    bool // owner is a background job, not a request
	Disk  int16
	Track int32
	ID    uint64
	Name  string
	Start env.Time
	End   env.Time
}

// Ctx is the per-request (or per-background-job) trace context. It is pooled
// by its Tracer: after Finish/FinishBg the context must not be touched. All
// methods are nil-receiver safe.
type Ctx struct {
	tr      *Tracer
	id      uint64
	op      int
	bgName  string
	bg      bool
	sampled bool
	start   env.Time
	qMark   env.Time
	comp    [NumComponents]env.Time
	spans   []Span
}

// Sampled reports whether this context records full span lists.
func (c *Ctx) Sampled() bool { return c != nil && c.sampled }

func (c *Ctx) push(s Span) {
	s.ID = c.id
	s.Bg = c.bg
	c.spans = append(c.spans, s)
}

// Add books [start, end) under component comp.
func (c *Ctx) Add(comp int, start, end env.Time) {
	if c == nil || end <= start {
		return
	}
	c.comp[comp] += end - start
	if c.sampled {
		c.push(Span{Kind: KindComp, Comp: int8(comp), Start: start, End: end})
	}
}

// AddCPU books one Pool.Use: cpu ns of service finishing at done, with the
// wall time before it ([arrive, done-cpu)) booked as run-queue wait. The
// service is placed at the end of the interval; per-core placement of the
// actual bursts comes from AddCore.
func (c *Ctx) AddCPU(arrive, done, cpu env.Time) {
	if c == nil {
		return
	}
	c.Add(CompCPUQ, arrive, done-cpu)
	c.Add(CompCPU, done-cpu, done)
}

// AddCore records one core-occupancy slice (sampled contexts only; the
// component accounting comes from AddCPU).
func (c *Ctx) AddCore(server int, start, end env.Time) {
	if c == nil || !c.sampled || end <= start {
		return
	}
	c.push(Span{Kind: KindCore, Comp: -1, Track: int32(server), Start: start, End: end})
}

// AddDev books one device request: queue wait [enq, start), service
// [start, done) on the given disk channel.
func (c *Ctx) AddDev(disk, channel int, enq, start, done env.Time) {
	if c == nil {
		return
	}
	c.Add(CompDevQueue, enq, start)
	c.Add(CompDevService, start, done)
	if c.sampled && done > start {
		c.push(Span{Kind: KindDev, Comp: -1, Disk: int16(disk), Track: int32(channel), Start: start, End: done})
	}
}

// MarkQueue stamps the start of a queue dwell (e.g. push onto a worker
// queue); EndQueue books the dwell ending now.
func (c *Ctx) MarkQueue(now env.Time) {
	if c != nil {
		c.qMark = now
	}
}

// EndQueue books [last MarkQueue, now) as queue wait.
func (c *Ctx) EndQueue(now env.Time) {
	if c == nil {
		return
	}
	c.Add(CompQueue, c.qMark, now)
}

// Count adds n to the tracer-wide event counter ctr (one of the Ctr*
// constants). Counters are pure observability: no events, no CPU, no locks.
func (c *Ctx) Count(ctr int, n int64) {
	if c == nil {
		return
	}
	c.tr.breakdown.Count(ctr, n)
}

// Span records a named engine-internal interval (sampled contexts only).
// Named spans are annotations: they overlap the component intervals and are
// not part of the breakdown accounting.
func (c *Ctx) Span(name string, start, end env.Time) {
	if c == nil || !c.sampled || end <= start {
		return
	}
	c.push(Span{Kind: KindNamed, Comp: -1, Name: name, Start: start, End: end})
}

// Outlier is the worst (largest end-to-end latency) sampled request.
type Outlier struct {
	set      bool
	ID       uint64
	Op       string
	Start    env.Time
	End      env.Time
	Total    env.Time
	Coverage float64
	Comp     [NumComponents]env.Time
	Spans    []Span
}

// Tracer accumulates per-component breakdowns for every finished request,
// span lists for the deterministic sample, and background job slices. One
// Tracer serves one engine run; it is single-simulation state (the sim runs
// procs one at a time), so no locking is needed or wanted.
type Tracer struct {
	// OpNames maps the op code passed to Begin to a display name; the
	// harness fills it with the kv op names.
	OpNames []string

	sampleEvery uint64
	seq         uint64
	bgSeq       uint64
	free        []*Ctx

	total     *stats.Hist
	breakdown *stats.Breakdown

	spans []Span // retained spans of sampled requests and background jobs
	bg    []Span // background job slices, always recorded

	covSum   float64
	covMin   float64
	sampled  int64
	finished int64

	outlier Outlier
	digest  stats.FNV
}

// NewTracer returns a tracer sampling one request in sampleEvery (0 disables
// span recording; component breakdowns are always on).
func NewTracer(sampleEvery int) *Tracer {
	t := &Tracer{
		sampleEvery: uint64(sampleEvery),
		total:       stats.NewHist(),
		breakdown:   stats.NewBreakdown(CompNames[:]...),
		covMin:      1,
		digest:      stats.NewFNV(),
	}
	t.breakdown.AddCounters(CtrNames[:]...)
	return t
}

func (t *Tracer) get() *Ctx {
	if n := len(t.free); n > 0 {
		c := t.free[n-1]
		t.free = t.free[:n-1]
		return c
	}
	return &Ctx{tr: t}
}

func (t *Tracer) put(c *Ctx) {
	c.comp = [NumComponents]env.Time{}
	c.spans = c.spans[:0]
	c.bg = false
	c.bgName = ""
	c.sampled = false
	t.free = append(t.free, c)
}

// Begin opens a trace context for one request issued now. Returns nil on a
// nil tracer (the disabled fast path).
func (t *Tracer) Begin(op int, now env.Time) *Ctx {
	if t == nil {
		return nil
	}
	id := t.seq
	t.seq++
	c := t.get()
	c.id = id
	c.op = op
	c.start = now
	c.qMark = now
	c.sampled = t.sampleEvery != 0 && id%t.sampleEvery == 0
	return c
}

func (t *Tracer) opName(op int) string {
	if op >= 0 && op < len(t.OpNames) {
		return t.OpNames[op]
	}
	return "op"
}

// Finish closes a request context: folds its components into the breakdown
// and digest, retains its spans if sampled, and returns it to the pool. The
// context must not be used afterwards.
func (t *Tracer) Finish(c *Ctx, end env.Time) {
	if t == nil || c == nil {
		return
	}
	total := end - c.start
	if total < 0 {
		total = 0
	}
	t.finished++
	t.total.Add(total)
	var sum env.Time
	for i := 0; i < CompOther; i++ {
		sum += c.comp[i]
	}
	other := total - sum
	if other < 0 {
		other = 0
	}
	c.comp[CompOther] = other
	for i := 0; i < NumComponents; i++ {
		t.breakdown.Add(i, c.comp[i])
	}
	t.digest.Word(c.id)
	t.digest.Word(uint64(c.op))
	t.digest.Word(uint64(c.start))
	t.digest.Word(uint64(end))
	for i := 0; i < NumComponents; i++ {
		t.digest.Word(uint64(c.comp[i]))
	}
	if c.sampled {
		t.sampled++
		cov := 1.0
		if total > 0 {
			cov = float64(unionCovered(c.spans, c.start, end)) / float64(total)
		}
		t.covSum += cov
		if cov < t.covMin {
			t.covMin = cov
		}
		if !t.outlier.set || total > t.outlier.Total {
			t.outlier = Outlier{
				set: true, ID: c.id, Op: t.opName(c.op),
				Start: c.start, End: end, Total: total, Coverage: cov,
				Comp:  c.comp,
				Spans: append([]Span(nil), c.spans...),
			}
		}
		t.spans = append(t.spans, Span{Kind: KindOp, Comp: -1, ID: c.id, Name: t.opName(c.op), Start: c.start, End: end})
		t.spans = append(t.spans, c.spans...)
	}
	t.put(c)
}

// BeginBg opens a context for one background maintenance job (flush,
// compaction, checkpoint, eviction). Background contexts always record
// spans.
func (t *Tracer) BeginBg(name string, now env.Time) *Ctx {
	if t == nil {
		return nil
	}
	c := t.get()
	c.id = t.bgSeq
	t.bgSeq++
	c.bg = true
	c.bgName = name
	c.sampled = true
	c.start = now
	c.qMark = now
	return c
}

// FinishBg closes a background job context.
func (t *Tracer) FinishBg(c *Ctx, end env.Time) {
	if t == nil || c == nil {
		return
	}
	t.bg = append(t.bg, Span{Kind: KindBg, Comp: -1, Bg: true, ID: c.id, Name: c.bgName, Start: c.start, End: end})
	t.spans = append(t.spans, c.spans...)
	t.digest.Word(^c.id) // distinguish bg records from request records
	t.digest.Word(uint64(c.start))
	t.digest.Word(uint64(end))
	t.put(c)
}

// AddBg records a background slice without a context (e.g. a device
// performance spike).
func (t *Tracer) AddBg(name string, start, end env.Time) {
	if t == nil {
		return
	}
	id := t.bgSeq
	t.bgSeq++
	t.bg = append(t.bg, Span{Kind: KindBg, Comp: -1, Bg: true, ID: id, Name: name, Start: start, End: end})
	t.digest.Word(^id)
	t.digest.Word(uint64(start))
	t.digest.Word(uint64(end))
}

// unionCovered returns the length of [start, end) covered by the union of
// the span intervals: overlapping spans (named annotations, core slices
// inside CPU windows) cannot inflate it past the interval's length. Sorts
// spans in place.
func unionCovered(spans []Span, start, end env.Time) env.Time {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var covered env.Time
	cur := start
	for _, s := range spans {
		s0, s1 := s.Start, s.End
		if s0 < cur {
			s0 = cur
		}
		if s1 > end {
			s1 = end
		}
		if s1 <= s0 {
			continue
		}
		covered += s1 - s0
		cur = s1
	}
	return covered
}

// Finished returns the number of finished traced requests.
func (t *Tracer) Finished() int64 { return t.finished }

// SampledCount returns how many finished requests recorded full span lists.
func (t *Tracer) SampledCount() int64 { return t.sampled }

// Total returns the end-to-end latency histogram over traced requests.
func (t *Tracer) Total() *stats.Hist { return t.total }

// Breakdown returns the per-component latency breakdown.
func (t *Tracer) Breakdown() *stats.Breakdown { return t.breakdown }

// Coverage returns the minimum and mean fraction of sampled requests'
// end-to-end latency covered by the union of their component spans.
func (t *Tracer) Coverage() (min, mean float64) {
	if t.sampled == 0 {
		return 0, 0
	}
	return t.covMin, t.covSum / float64(t.sampled)
}

// Outlier returns the worst sampled request.
func (t *Tracer) Outlier() Outlier { return t.outlier }

// BgSpans returns the recorded background job slices.
func (t *Tracer) BgSpans() []Span { return t.bg }

// Spans returns the retained spans of sampled requests and background jobs.
func (t *Tracer) Spans() []Span { return t.spans }

// OutlierMaintenance returns the names of engine maintenance jobs whose
// slices overlap the outlier request's lifetime. Device-internal spikes
// ("devspike") are excluded: they hit every engine alike, while the paper's
// Figure-2 argument is about engine-generated maintenance work.
func (t *Tracer) OutlierMaintenance() []string {
	if t == nil || !t.outlier.set {
		return nil
	}
	var names []string
	for _, s := range t.bg {
		if s.Name == "devspike" {
			continue
		}
		if s.Start < t.outlier.End && s.End > t.outlier.Start {
			names = append(names, s.Name)
		}
	}
	return names
}

// Digest returns an FNV-1a fingerprint of every finished request's identity
// and component decomposition plus every background slice, folded with the
// full breakdown and total-latency histogram state. Two same-seed runs must
// produce identical digests.
func (t *Tracer) Digest() uint64 {
	d := t.digest
	d.Word(t.breakdown.Digest())
	d.Word(t.total.Digest())
	d.Word(uint64(len(t.spans)))
	return uint64(d)
}
