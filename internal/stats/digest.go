package stats

import "math"

// Digests give a compact fingerprint of a measurement's full state, used by
// the determinism regression tests: two runs with the same seed must produce
// bit-for-bit identical histograms and timelines, which is far stronger than
// comparing a few percentiles. FNV-1a over the raw counters is enough — the
// digest only needs to differ when the underlying state differs.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime
		v >>= 8
	}
	*h = fnv64(x)
}

// Digest returns an FNV-1a hash of the histogram's complete state: every
// bucket count plus n, sum, min and max.
func (h *Hist) Digest() uint64 {
	d := fnv64(fnvOffset)
	for _, c := range h.counts {
		d.word(uint64(c))
	}
	d.word(uint64(h.n))
	d.word(math.Float64bits(h.sum))
	d.word(uint64(h.max))
	d.word(uint64(h.min))
	return uint64(d)
}

// Digest returns an FNV-1a hash of the timeline's bucket width and every
// accumulated bucket value.
func (tl *Timeline) Digest() uint64 {
	d := fnv64(fnvOffset)
	d.word(uint64(tl.Width))
	for _, v := range tl.buckets {
		d.word(math.Float64bits(v))
	}
	return uint64(d)
}
