package stats

import "kvell/internal/env"

// Breakdown is a set of named latency histograms, one per component of a
// decomposed measurement (queue wait, CPU service, device service, ...).
// The trace subsystem records every request's per-component durations here,
// so percentile queries over any component reuse the O(1) log-linear Hist
// rather than ad-hoc sample slices. The zero value is not usable; call
// NewBreakdown.
type Breakdown struct {
	names []string
	hists []*Hist

	// Named event counters ride alongside the histograms: cheap monotonic
	// tallies (cache hits, promotions, demotions) that want a place in the
	// breakdown report and its digest but carry no duration.
	ctrNames []string
	ctrs     []int64
}

// NewBreakdown returns an empty breakdown with one histogram per name.
func NewBreakdown(names ...string) *Breakdown {
	b := &Breakdown{names: append([]string(nil), names...)}
	b.hists = make([]*Hist, len(b.names))
	for i := range b.hists {
		b.hists[i] = NewHist()
	}
	return b
}

// Len returns the number of components.
func (b *Breakdown) Len() int { return len(b.names) }

// Name returns the i-th component's name.
func (b *Breakdown) Name(i int) string { return b.names[i] }

// Hist returns the i-th component's histogram.
func (b *Breakdown) Hist(i int) *Hist { return b.hists[i] }

// Add records one sample for component i.
func (b *Breakdown) Add(i int, v env.Time) { b.hists[i].Add(v) }

// Sum returns the total time recorded for component i.
func (b *Breakdown) Sum(i int) float64 { return b.hists[i].sum }

// AddCounters registers named event counters, returning the index of the
// first. Counters are independent of the histogram components.
func (b *Breakdown) AddCounters(names ...string) int {
	first := len(b.ctrNames)
	b.ctrNames = append(b.ctrNames, names...)
	b.ctrs = append(b.ctrs, make([]int64, len(names))...)
	return first
}

// Count adds n to counter i.
func (b *Breakdown) Count(i int, n int64) { b.ctrs[i] += n }

// Counters returns the number of registered counters.
func (b *Breakdown) Counters() int { return len(b.ctrNames) }

// CounterName returns the i-th counter's name.
func (b *Breakdown) CounterName(i int) string { return b.ctrNames[i] }

// Counter returns the i-th counter's value.
func (b *Breakdown) Counter(i int) int64 { return b.ctrs[i] }

// Digest returns an FNV-1a hash over every component's name and full
// histogram state, for determinism regression tests.
func (b *Breakdown) Digest() uint64 {
	d := fnv64(fnvOffset)
	for i, name := range b.names {
		for _, ch := range []byte(name) {
			d.word(uint64(ch))
		}
		d.word(b.hists[i].Digest())
	}
	for i, name := range b.ctrNames {
		for _, ch := range []byte(name) {
			d.word(uint64(ch))
		}
		d.word(uint64(b.ctrs[i]))
	}
	return uint64(d)
}

// FNV is an exported incremental FNV-1a hasher, for composite digests built
// outside this package (the trace subsystem hashes per-request records and
// folds in histogram digests).
type FNV uint64

// NewFNV returns the standard FNV-1a offset basis.
func NewFNV() FNV { return FNV(fnvOffset) }

// Word folds one 64-bit word into the hash, least-significant byte first.
func (f *FNV) Word(v uint64) { (*fnv64)(f).word(v) }
