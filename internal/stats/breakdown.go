package stats

import "kvell/internal/env"

// Breakdown is a set of named latency histograms, one per component of a
// decomposed measurement (queue wait, CPU service, device service, ...).
// The trace subsystem records every request's per-component durations here,
// so percentile queries over any component reuse the O(1) log-linear Hist
// rather than ad-hoc sample slices. The zero value is not usable; call
// NewBreakdown.
type Breakdown struct {
	names []string
	hists []*Hist
}

// NewBreakdown returns an empty breakdown with one histogram per name.
func NewBreakdown(names ...string) *Breakdown {
	b := &Breakdown{names: append([]string(nil), names...)}
	b.hists = make([]*Hist, len(b.names))
	for i := range b.hists {
		b.hists[i] = NewHist()
	}
	return b
}

// Len returns the number of components.
func (b *Breakdown) Len() int { return len(b.names) }

// Name returns the i-th component's name.
func (b *Breakdown) Name(i int) string { return b.names[i] }

// Hist returns the i-th component's histogram.
func (b *Breakdown) Hist(i int) *Hist { return b.hists[i] }

// Add records one sample for component i.
func (b *Breakdown) Add(i int, v env.Time) { b.hists[i].Add(v) }

// Sum returns the total time recorded for component i.
func (b *Breakdown) Sum(i int) float64 { return b.hists[i].sum }

// Digest returns an FNV-1a hash over every component's name and full
// histogram state, for determinism regression tests.
func (b *Breakdown) Digest() uint64 {
	d := fnv64(fnvOffset)
	for i, name := range b.names {
		for _, ch := range []byte(name) {
			d.word(uint64(ch))
		}
		d.word(b.hists[i].Digest())
	}
	return uint64(d)
}

// FNV is an exported incremental FNV-1a hasher, for composite digests built
// outside this package (the trace subsystem hashes per-request records and
// folds in histogram digests).
type FNV uint64

// NewFNV returns the standard FNV-1a offset basis.
func NewFNV() FNV { return FNV(fnvOffset) }

// Word folds one 64-bit word into the hash, least-significant byte first.
func (f *FNV) Word(v uint64) { (*fnv64)(f).word(v) }
