package stats

import (
	"testing"

	"kvell/internal/env"
)

// BenchmarkStatsRecord measures one latency sample landing in the
// fixed-bucket histogram.
func BenchmarkStatsRecord(b *testing.B) {
	h := NewHist()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(env.Time(i%10_000_000) + 1)
	}
}

// TestAllocBudgetStatsRecord pins Add at zero allocations: recording a
// sample must never touch the heap, whatever bucket it lands in.
func TestAllocBudgetStatsRecord(t *testing.T) {
	h := NewHist()
	v := env.Time(1)
	if n := testing.AllocsPerRun(1000, func() {
		h.Add(v)
		v = v*7 + 3 // wander across fast and slow buckets
		if v > 1<<40 {
			v = 1
		}
	}); n != 0 {
		t.Errorf("Hist.Add allocates %v per sample, want 0", n)
	}
}
