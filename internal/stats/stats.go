// Package stats provides the measurement primitives used across the
// benchmark harness: log-bucketed latency histograms, bucketed time series
// (throughput timelines) and busy-interval utilization timelines.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"kvell/internal/env"
)

// Hist is a latency histogram with logarithmically spaced buckets (about 5%
// relative resolution), supporting percentile queries up to the exact
// maximum. The zero value is not usable; call NewHist.
type Hist struct {
	counts []int64
	n      int64
	sum    float64
	max    env.Time
	min    env.Time
}

// growth is the bucket growth factor; bucket i covers [growth^i, growth^(i+1)).
const growth = 1.05

var logGrowth = math.Log(growth)

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]int64, 512), min: math.MaxInt64}
}

// slowBucketOf is the defining bucket formula. It is kept only as the oracle
// for the precomputed tables below (and their equivalence test); the hot path
// uses bucketOf, which must agree bit-for-bit — histogram digests hash raw
// bucket counts, so any divergence breaks the golden schedule fixtures.
func slowBucketOf(v env.Time) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log(float64(v)) / logGrowth)
	if b < 0 {
		b = 0
	}
	if b > 511 {
		b = 511
	}
	return b
}

// bucketBounds[b] is the smallest v with slowBucketOf(v) >= b, so bucket b
// covers [bucketBounds[b], bucketBounds[b+1]). octaveFirst[l] is the bucket
// of the smallest value with bit length l, narrowing the table scan to one
// power-of-two octave (at most ~15 buckets at 5% growth).
var (
	bucketBounds [512]env.Time
	octaveFirst  [65]int16
)

func init() {
	bucketBounds[0] = 0
	for b := 1; b < 512; b++ {
		c := env.Time(math.Exp(float64(b) * logGrowth))
		if c < 1 {
			c = 1
		}
		// math.Exp is only an estimate of the boundary; walk to the exact
		// smallest integer the oracle puts in bucket >= b.
		for slowBucketOf(c) >= b {
			c--
		}
		for slowBucketOf(c) < b {
			c++
		}
		bucketBounds[b] = c
	}
	for l := 1; l <= 64; l++ {
		v := env.Time(1) << (l - 1)
		if l == 64 || v > bucketBounds[511] {
			octaveFirst[l] = 511
			continue
		}
		octaveFirst[l] = int16(slowBucketOf(v))
	}
}

func bucketOf(v env.Time) int {
	if v < 1 {
		return 0
	}
	b := int(octaveFirst[bits.Len64(uint64(v))])
	for b+1 < 512 && bucketBounds[b+1] <= v {
		b++
	}
	return b
}

// Add records one sample.
func (h *Hist) Add(v env.Time) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Count returns the number of samples.
func (h *Hist) Count() int64 { return h.n }

// Max returns the largest recorded sample (0 if empty).
func (h *Hist) Max() env.Time {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded sample (0 if empty).
func (h *Hist) Min() env.Time {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean (0 if empty).
func (h *Hist) Mean() env.Time {
	if h.n == 0 {
		return 0
	}
	return env.Time(h.sum / float64(h.n))
}

// Percentile returns the value at quantile p in [0,1]. The p==1 result is
// the exact maximum.
func (h *Hist) Percentile(p float64) env.Time {
	if h.n == 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	target := int64(p * float64(h.n))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i == len(h.counts)-1 {
				// The overflow bucket is unbounded above; the recorded
				// maximum is the only honest answer.
				return h.max
			}
			// Upper edge of bucket i.
			v := env.Time(math.Pow(growth, float64(i+1)))
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.min < h.min {
		h.min = other.min
	}
}

// String summarizes the distribution.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		h.n, FmtDur(h.Mean()), FmtDur(h.Percentile(0.50)), FmtDur(h.Percentile(0.99)), FmtDur(h.Max()))
}

// Timeline accumulates a value into fixed-width time buckets; used for
// per-second throughput and bandwidth series.
type Timeline struct {
	Width   env.Time // bucket width
	buckets []float64
}

// NewTimeline returns a timeline with the given bucket width.
func NewTimeline(width env.Time) *Timeline {
	if width <= 0 {
		width = env.Second
	}
	return &Timeline{Width: width}
}

// Add accumulates v into the bucket containing time t.
func (tl *Timeline) Add(t env.Time, v float64) {
	if t < 0 {
		t = 0
	}
	b := int(t / tl.Width)
	for b >= len(tl.buckets) {
		tl.buckets = append(tl.buckets, 0)
	}
	tl.buckets[b] += v
}

// Buckets returns the raw accumulated values per bucket.
func (tl *Timeline) Buckets() []float64 { return tl.buckets }

// Rates returns per-second rates (bucket value divided by bucket width).
func (tl *Timeline) Rates() []float64 {
	out := make([]float64, len(tl.buckets))
	scale := float64(env.Second) / float64(tl.Width)
	for i, v := range tl.buckets {
		out[i] = v * scale
	}
	return out
}

// MinMax returns the smallest and largest per-second rate, ignoring the
// first skip buckets (ramp-up) and any trailing zero bucket.
func (tl *Timeline) MinMax(skip int) (min, max float64) {
	r := tl.Rates()
	if len(r) > 0 {
		r = r[:len(r)-1] // last bucket is usually partial
	}
	if skip < len(r) {
		r = r[skip:]
	}
	if len(r) == 0 {
		return 0, 0
	}
	min, max = r[0], r[0]
	for _, v := range r {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Util accumulates busy intervals into fixed-width buckets and reports the
// busy fraction per bucket; used for CPU and device utilization timelines.
type Util struct {
	Width    env.Time
	Capacity float64 // e.g. number of cores or channels
	busy     []float64
}

// NewUtil returns a utilization timeline; capacity is the number of
// servers so that fractions are normalized to [0,1].
func NewUtil(width env.Time, capacity int) *Util {
	if width <= 0 {
		width = env.Second
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Util{Width: width, Capacity: float64(capacity)}
}

// AddBusy records a busy interval [start, end) on one server.
func (u *Util) AddBusy(start, end env.Time) {
	if end <= start {
		return
	}
	for start < end {
		b := int(start / u.Width)
		bEnd := env.Time(b+1) * u.Width
		if bEnd > end {
			bEnd = end
		}
		for b >= len(u.busy) {
			u.busy = append(u.busy, 0)
		}
		u.busy[b] += float64(bEnd - start)
		start = bEnd
	}
}

// Fractions returns the per-bucket busy fraction in [0,1].
func (u *Util) Fractions() []float64 {
	out := make([]float64, len(u.busy))
	denom := float64(u.Width) * u.Capacity
	for i, v := range u.busy {
		out[i] = v / denom
	}
	return out
}

// MeanFraction returns the average utilization over buckets [skip, end).
func (u *Util) MeanFraction(skip int) float64 {
	f := u.Fractions()
	if skip >= len(f) {
		return 0
	}
	f = f[skip:]
	var s float64
	for _, v := range f {
		s += v
	}
	if len(f) == 0 {
		return 0
	}
	return s / float64(len(f))
}

// FmtDur renders a nanosecond duration in human units.
func FmtDur(d env.Time) string {
	switch {
	case d >= env.Second:
		return fmt.Sprintf("%.2fs", float64(d)/float64(env.Second))
	case d >= env.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(env.Millisecond))
	case d >= env.Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(env.Microsecond))
	default:
		return fmt.Sprintf("%dns", d)
	}
}

// FmtRate renders an operations-per-second rate compactly (e.g. 420K, 3.8M).
func FmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2gM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.3gK", r/1e3)
	default:
		return fmt.Sprintf("%.3g", r)
	}
}

// FmtBytesRate renders a bytes-per-second rate (e.g. 2.0GB/s).
func FmtBytesRate(r float64) string {
	switch {
	case r >= 1<<30:
		return fmt.Sprintf("%.2fGB/s", r/(1<<30))
	case r >= 1<<20:
		return fmt.Sprintf("%.1fMB/s", r/(1<<20))
	case r >= 1<<10:
		return fmt.Sprintf("%.1fKB/s", r/(1<<10))
	default:
		return fmt.Sprintf("%.0fB/s", r)
	}
}

// Median returns the median of xs (0 if empty). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

// MaxTimeline tracks the maximum of a value per fixed-width time bucket
// (e.g. worst request latency per second, Figure 2).
type MaxTimeline struct {
	Width   env.Time
	buckets []float64
}

// NewMaxTimeline returns a max-timeline with the given bucket width.
func NewMaxTimeline(width env.Time) *MaxTimeline {
	if width <= 0 {
		width = env.Second
	}
	return &MaxTimeline{Width: width}
}

// Add records v at time t, keeping the per-bucket maximum.
func (tl *MaxTimeline) Add(t env.Time, v float64) {
	if t < 0 {
		t = 0
	}
	b := int(t / tl.Width)
	for b >= len(tl.buckets) {
		tl.buckets = append(tl.buckets, 0)
	}
	if v > tl.buckets[b] {
		tl.buckets[b] = v
	}
}

// Buckets returns the per-bucket maxima.
func (tl *MaxTimeline) Buckets() []float64 { return tl.buckets }
