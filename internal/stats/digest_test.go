package stats

import (
	"testing"

	"kvell/internal/env"
)

func TestHistDigest(t *testing.T) {
	a, b := NewHist(), NewHist()
	if a.Digest() != b.Digest() {
		t.Fatal("empty histograms must digest equally")
	}
	for i := 1; i <= 100; i++ {
		a.Add(env.Time(i * 1000))
		b.Add(env.Time(i * 1000))
	}
	if a.Digest() != b.Digest() {
		t.Fatal("identical sample streams must digest equally")
	}
	if a.Digest() == NewHist().Digest() {
		t.Fatal("populated histogram digests like an empty one")
	}
	// A zero-valued sample lands in bucket 0 but still bumps n: the digest
	// must see it.
	b.Add(0)
	if a.Digest() == b.Digest() {
		t.Fatal("extra zero sample did not change the digest")
	}
	// Two samples in the same log bucket but with different values differ
	// in sum, so the digest distinguishes them.
	c, d := NewHist(), NewHist()
	c.Add(1000)
	d.Add(1001)
	if c.Digest() == d.Digest() {
		t.Fatal("same-bucket samples with different sums digest equally")
	}
}

func TestTimelineDigest(t *testing.T) {
	a, b := NewTimeline(env.Second), NewTimeline(env.Second)
	if a.Digest() != b.Digest() {
		t.Fatal("empty timelines with equal width must digest equally")
	}
	a.Add(env.Second/2, 3)
	a.Add(3*env.Second/2, 7)
	b.Add(env.Second/2, 3)
	b.Add(3*env.Second/2, 7)
	if a.Digest() != b.Digest() {
		t.Fatal("identical timelines must digest equally")
	}
	b.Add(3*env.Second/2, 1)
	if a.Digest() == b.Digest() {
		t.Fatal("diverging bucket value did not change the digest")
	}
	// Width is part of the fingerprint even with no samples.
	if NewTimeline(env.Second).Digest() == NewTimeline(env.Millisecond).Digest() {
		t.Fatal("timelines with different widths digest equally")
	}
}
