package stats

import (
	"testing"

	"kvell/internal/env"
)

func TestBreakdownBasic(t *testing.T) {
	b := NewBreakdown("queue", "cpu", "dev")
	if b.Len() != 3 || b.Name(1) != "cpu" {
		t.Fatalf("names: len=%d name(1)=%q", b.Len(), b.Name(1))
	}
	for i := 0; i < 100; i++ {
		b.Add(0, env.Time(i)*env.Microsecond)
		b.Add(1, env.Microsecond)
	}
	if n := b.Hist(0).Count(); n != 100 {
		t.Fatalf("component 0 count = %d", n)
	}
	if n := b.Hist(2).Count(); n != 0 {
		t.Fatalf("component 2 count = %d", n)
	}
	if got := b.Hist(1).Percentile(0.99); got < env.Microsecond/2 || got > 2*env.Microsecond {
		t.Fatalf("p99 of constant 1us samples = %s", FmtDur(got))
	}
	if b.Sum(1) != 100*float64(env.Microsecond) {
		t.Fatalf("Sum(1) = %v", b.Sum(1))
	}
}

// Values beyond the last log bucket boundary all land in the overflow bucket
// (511); percentile queries there must clamp to the recorded maximum rather
// than extrapolate the bucket's upper edge.
func TestBreakdownOverflowBucketPercentiles(t *testing.T) {
	huge := bucketBounds[511] * 3 // firmly inside the overflow bucket
	if bucketOf(huge) != 511 {
		t.Fatalf("test value %d not in overflow bucket (got %d)", huge, bucketOf(huge))
	}
	b := NewBreakdown("stall")
	for i := 0; i < 10; i++ {
		b.Add(0, huge+env.Time(i))
	}
	h := b.Hist(0)
	wantMax := huge + 9
	if h.Max() != wantMax {
		t.Fatalf("max = %d, want %d", h.Max(), wantMax)
	}
	for _, p := range []float64{0.5, 0.99, 0.999, 1.0} {
		if got := h.Percentile(p); got != wantMax {
			t.Errorf("p%g = %d, want clamp to max %d", p*100, got, wantMax)
		}
	}
	// A mixed distribution still resolves percentiles below the overflow.
	b2 := NewBreakdown("mixed")
	for i := 0; i < 990; i++ {
		b2.Add(0, env.Microsecond)
	}
	for i := 0; i < 10; i++ {
		b2.Add(0, huge)
	}
	h2 := b2.Hist(0)
	if got := h2.Percentile(0.5); got > 2*env.Microsecond {
		t.Errorf("p50 = %d, want ~1us", got)
	}
	if got := h2.Percentile(0.999); got != huge {
		t.Errorf("p99.9 = %d, want overflow clamp to max %d", got, huge)
	}
}

func TestBreakdownDigest(t *testing.T) {
	a := NewBreakdown("x", "y")
	b := NewBreakdown("x", "y")
	for i := 0; i < 50; i++ {
		a.Add(i%2, env.Time(i))
		b.Add(i%2, env.Time(i))
	}
	if a.Digest() != b.Digest() {
		t.Fatal("identical breakdowns digest differently")
	}
	b.Add(0, 1)
	if a.Digest() == b.Digest() {
		t.Fatal("different breakdowns digest identically")
	}
	if NewBreakdown("x").Digest() == NewBreakdown("y").Digest() {
		t.Fatal("component names not folded into digest")
	}
}
