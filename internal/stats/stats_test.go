package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kvell/internal/env"
)

func TestHistPercentiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Add(env.Time(i * 1000))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1_000_000 || h.Min() != 1000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	p50 := h.Percentile(0.5)
	if p50 < 450_000 || p50 > 560_000 {
		t.Fatalf("p50 = %d, want ~500us", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 940_000 || p99 > 1_050_000 {
		t.Fatalf("p99 = %d", p99)
	}
	if h.Percentile(1.0) != h.Max() {
		t.Fatal("p100 != max")
	}
	mean := h.Mean()
	if mean < 490_000 || mean > 510_000 {
		t.Fatalf("mean = %d", mean)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Add(100)
	b.Add(1_000_000)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 1_000_000 || a.Min() != 100 {
		t.Fatalf("merge: %s", a)
	}
	a.Merge(nil) // no-op
}

func TestHistPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHist()
		for i := 0; i < 500; i++ {
			h.Add(env.Time(r.Intn(10_000_000)))
		}
		prev := env.Time(0)
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(1.0) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineRates(t *testing.T) {
	tl := NewTimeline(env.Second)
	for i := 0; i < 10; i++ {
		tl.Add(env.Time(i)*100*env.Millisecond, 1) // 10 events in second 0
	}
	tl.Add(env.Second+1, 5)
	rates := tl.Rates()
	if len(rates) != 2 || rates[0] != 10 || rates[1] != 5 {
		t.Fatalf("rates = %v", rates)
	}
	min, max := tl.MinMax(0)
	// The last (partial) bucket is dropped: only bucket 0 remains.
	if min != 10 || max != 10 {
		t.Fatalf("minmax = %v,%v", min, max)
	}
}

func TestUtilFractions(t *testing.T) {
	u := NewUtil(env.Second, 2) // 2 servers
	u.AddBusy(0, env.Second)    // one server busy all of second 0
	u.AddBusy(env.Second/2, env.Second+env.Second/2)
	f := u.Fractions()
	if len(f) != 2 {
		t.Fatalf("buckets = %d", len(f))
	}
	if f[0] != 0.75 { // 1s + 0.5s busy of 2s capacity
		t.Fatalf("bucket0 = %f", f[0])
	}
	if f[1] != 0.25 {
		t.Fatalf("bucket1 = %f", f[1])
	}
	if m := u.MeanFraction(0); m != 0.5 {
		t.Fatalf("mean = %f", m)
	}
}

func TestUtilSpansBuckets(t *testing.T) {
	u := NewUtil(env.Second, 1)
	u.AddBusy(env.Second/2, 2*env.Second+env.Second/2) // spans 3 buckets
	f := u.Fractions()
	if len(f) != 3 || f[0] != 0.5 || f[1] != 1.0 || f[2] != 0.5 {
		t.Fatalf("fractions = %v", f)
	}
}

func TestMaxTimeline(t *testing.T) {
	m := NewMaxTimeline(env.Second)
	m.Add(100, 5)
	m.Add(200, 3)
	m.Add(env.Second+1, 9)
	b := m.Buckets()
	if len(b) != 2 || b[0] != 5 || b[1] != 9 {
		t.Fatalf("buckets = %v", b)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FmtDur(500), "500ns"},
		{FmtDur(1500), "1.5us"},
		{FmtDur(2 * env.Millisecond), "2.0ms"},
		{FmtDur(3 * env.Second), "3.00s"},
		{FmtRate(420_000), "420K"},
		{FmtRate(3_800_000), "3.8M"},
		{FmtRate(12), "12"},
		{FmtBytesRate(2 << 30), "2.00GB/s"},
		{FmtBytesRate(5 << 20), "5.0MB/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %f", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("median(nil) = %f", m)
	}
	// Input must not be mutated.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 {
		t.Fatal("median mutated input")
	}
}

// TestBucketOfMatchesOracle pins the table-driven bucketOf to the defining
// log formula: the histogram digests hash raw bucket counts, so the two must
// agree on every input, especially at bucket boundaries.
func TestBucketOfMatchesOracle(t *testing.T) {
	// Every boundary and its neighbors.
	for b := 1; b < 512; b++ {
		for _, v := range []env.Time{bucketBounds[b] - 1, bucketBounds[b], bucketBounds[b] + 1} {
			if got, want := bucketOf(v), slowBucketOf(v); got != want {
				t.Fatalf("bucketOf(%d) = %d, oracle %d (boundary of bucket %d)", v, got, want, b)
			}
		}
	}
	// Small values exhaustively, then random draws across the full range.
	for v := env.Time(-2); v < 100_000; v++ {
		if got, want := bucketOf(v), slowBucketOf(v); got != want {
			t.Fatalf("bucketOf(%d) = %d, oracle %d", v, got, want)
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1_000_000; i++ {
		v := env.Time(r.Int63n(bucketBounds[511] * 2))
		if got, want := bucketOf(v), slowBucketOf(v); got != want {
			t.Fatalf("bucketOf(%d) = %d, oracle %d", v, got, want)
		}
	}
}
