// Package net models the cluster interconnect: N simulated machines joined
// by point-to-point links, each link a calibrated latency/bandwidth queueing
// station with the same FCFS discipline as a device channel
// (internal/device). The fabric is switched and non-blocking: every ordered
// machine pair has its own link station, so traffic between A and B never
// queues behind traffic between A and C — the model of a datacenter ToR
// switch, not a shared bus.
//
// A message is transmitted (size/bandwidth seconds of link occupancy, FCFS
// behind earlier messages on the same link), then propagates (one-way
// latency), then its deliver callback runs on the destination machine's
// event domain. Messages to or from a halted machine are dropped — packets
// addressed to the dead, or still in the NIC of the dead, vanish — which is
// exactly what the failover experiments rely on.
//
// Everything is deterministic: same sends in the same order produce the same
// deliveries in the same order (link stations are FCFS, simultaneous
// deliveries dispatch in send order through the kernel's same-time FIFO
// lane), and the package draws no randomness and never blocks.
package net

import (
	"kvell/internal/env"
	"kvell/internal/sim"
	"kvell/internal/trace"
)

// Profile calibrates one link direction.
type Profile struct {
	Name string
	// Latency is the one-way propagation delay, added after transmission.
	Latency env.Time
	// BytesPerSec is the link bandwidth per direction.
	BytesPerSec int64
	// Channels is the number of parallel lanes per directed link (1 models
	// a single NIC queue per peer).
	Channels int
}

// TenGbE is a 10 Gbit/s datacenter link: 1.25 GB/s per direction with 10µs
// one-way latency (same-rack RTT ~20µs, the regime the KVell paper's
// Config-Amazon machines live in).
func TenGbE() Profile {
	return Profile{Name: "10GbE", Latency: 10 * env.Microsecond, BytesPerSec: 1_250_000_000, Channels: 1}
}

// Counters is a snapshot of network activity.
type Counters struct {
	Msgs    int64 // messages delivered or in flight
	Bytes   int64 // payload bytes of those messages
	Dropped int64 // messages dropped at Send because an endpoint was halted
}

// Network joins machines 0..n-1 of one Sim.
type Network struct {
	s     *sim.Sim
	prof  Profile
	n     int
	links []*sim.Station // ordered pair (from*n + to)

	counters Counters
}

// New returns a network over machines 0..machines-1 of s.
func New(s *sim.Sim, machines int, prof Profile) *Network {
	if prof.Channels <= 0 {
		prof.Channels = 1
	}
	nw := &Network{s: s, prof: prof, n: machines}
	nw.links = make([]*sim.Station, machines*machines)
	for i := range nw.links {
		nw.links[i] = sim.NewStation(prof.Channels)
	}
	return nw
}

// Machines returns the number of machines the network joins.
func (nw *Network) Machines() int { return nw.n }

// Profile returns the link calibration.
func (nw *Network) Profile() Profile { return nw.prof }

// Counters returns cumulative traffic counters.
func (nw *Network) Counters() Counters { return nw.counters }

// TransmitTime returns the wire occupancy of a size-byte message (excluding
// propagation latency and queueing) — exposed for calibration tests.
func (nw *Network) TransmitTime(size int) env.Time {
	if size <= 0 {
		return 0
	}
	bps := nw.prof.BytesPerSec
	return env.Time((int64(size)*int64(env.Second) + bps - 1) / bps)
}

// Send transmits a size-byte message from machine from to machine to and
// schedules deliver on the destination's event domain when the last byte
// arrives. If either endpoint is already halted the message is dropped; a
// destination halted after Send but before arrival drops it at dispatch
// (packets in flight to the dead). tc, when non-nil, books the whole
// send-to-arrival interval (link queue + transmit + propagation) as CompNet.
// Must be called from simulation context; deliver runs on the scheduler and
// must not block.
func (nw *Network) Send(from, to, size int, tc *trace.Ctx, deliver func()) {
	if nw.s.Halted(from) || nw.s.Halted(to) {
		nw.counters.Dropped++
		return
	}
	now := nw.s.Now()
	done := nw.links[from*nw.n+to].Assign(now, nw.TransmitTime(size))
	arrive := done + nw.prof.Latency
	nw.counters.Msgs++
	nw.counters.Bytes += int64(size)
	tc.Add(trace.CompNet, now, arrive)
	nw.s.AtOn(to, arrive, deliver)
}
