package net

import (
	"fmt"
	"hash/fnv"
	"testing"

	"kvell/internal/env"
	"kvell/internal/sim"
	"kvell/internal/trace"
)

// TransmitTime is ceil(size / bandwidth) in simulated time.
func TestTransmitTimeCalibration(t *testing.T) {
	s := sim.New(1)
	defer s.Close()
	nw := New(s, 2, TenGbE())
	cases := []struct {
		size int
		want env.Time
	}{
		{0, 0},
		{-5, 0},
		{1, 1},                             // ceil(0.8ns)
		{1250, env.Microsecond},            // 1.25 GB/s exactly
		{1_250_000, env.Millisecond},       // 1 MB
		{1251, env.Microsecond + 1},        // rounds up, never down
		{2500, 2 * env.Microsecond},        //
		{12_500_000, 10 * env.Millisecond}, // 12.5 MB
		{1_250_000_000, env.Second},        // full second of occupancy
	}
	for _, c := range cases {
		if got := nw.TransmitTime(c.size); got != c.want {
			t.Errorf("TransmitTime(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

// One message: arrival = transmit + one-way latency. Two back-to-back on the
// same link: the second queues behind the first (FCFS); on distinct links
// they do not interfere (switched fabric).
func TestLinkLatencyAndQueueing(t *testing.T) {
	s := sim.New(1)
	defer s.Close()
	nw := New(s, 3, TenGbE())
	arrivals := map[string]env.Time{}
	s.At(0, func() {
		nw.Send(0, 1, 1250, nil, func() { arrivals["a"] = s.Now() })
		nw.Send(0, 1, 1250, nil, func() { arrivals["b"] = s.Now() })
		nw.Send(0, 2, 1250, nil, func() { arrivals["c"] = s.Now() })
		nw.Send(1, 0, 1250, nil, func() { arrivals["d"] = s.Now() })
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	lat := TenGbE().Latency
	want := map[string]env.Time{
		"a": env.Microsecond + lat,   // transmit 1µs, then propagate
		"b": 2*env.Microsecond + lat, // queued behind a on the 0→1 link
		"c": env.Microsecond + lat,   // own 0→2 link, no queueing
		"d": env.Microsecond + lat,   // reverse direction is a separate link
	}
	for k, w := range want {
		if arrivals[k] != w {
			t.Errorf("arrival %q = %d, want %d", k, arrivals[k], w)
		}
	}
	if c := nw.Counters(); c.Msgs != 4 || c.Bytes != 4*1250 || c.Dropped != 0 {
		t.Errorf("counters = %+v", c)
	}
}

// Messages arriving at the same instant on different machines dispatch in
// send order — the same-time FIFO lane is global, so cross-machine
// simultaneity cannot reorder across runs.
func TestSameInstantDeliveriesFIFOAcrossMachines(t *testing.T) {
	s := sim.New(1)
	defer s.Close()
	nw := New(s, 5, TenGbE())
	var order []int
	s.At(0, func() {
		for i := 1; i <= 4; i++ {
			i := i
			// Same size, distinct links: all four arrive at the same instant.
			nw.Send(0, i, 100, nil, func() { order = append(order, i) })
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(order))
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("delivery order = %v, want send order", order)
		}
	}
}

// Halted endpoints: sends to or from a dead machine are dropped at Send;
// messages already in flight to a machine that dies before arrival are
// dropped at dispatch (the deliver callback never runs).
func TestHaltedEndpointsDropMessages(t *testing.T) {
	s := sim.New(1)
	defer s.Close()
	nw := New(s, 3, TenGbE())
	var delivered, inFlight int
	s.At(0, func() {
		// Arrives ~11µs; machine 2 dies at 5µs: dropped at dispatch.
		nw.Send(0, 2, 1250, nil, func() { inFlight++ })
	})
	s.At(5*env.Microsecond, func() { s.Halt(2) })
	s.At(10*env.Microsecond, func() {
		nw.Send(0, 2, 100, nil, func() { delivered++ }) // to the dead
		nw.Send(2, 0, 100, nil, func() { delivered++ }) // from the dead
		nw.Send(0, 1, 100, nil, func() { delivered++ }) // survivors unaffected
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if inFlight != 0 {
		t.Error("in-flight message delivered to a halted machine")
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (only the survivor pair)", delivered)
	}
	c := nw.Counters()
	if c.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2 (in-flight drops are not counted at Send)", c.Dropped)
	}
}

// Send books the whole send-to-arrival interval as CompNet on the request's
// trace context.
func TestSendBooksCompNet(t *testing.T) {
	s := sim.New(1)
	defer s.Close()
	nw := New(s, 2, TenGbE())
	tr := trace.NewTracer(0)
	s.At(0, func() {
		tc := tr.Begin(0, s.Now())
		nw.Send(0, 1, 1250, tc, func() { tr.Finish(tc, s.Now()) })
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	want := float64(env.Microsecond + TenGbE().Latency)
	if got := tr.Breakdown().Sum(trace.CompNet); got != want {
		t.Errorf("CompNet sum = %v, want %v", got, want)
	}
}

// Golden digest for a two-machine echo workload: machine 0 sends a burst of
// requests of varying sizes, machine 1 echoes each back at half size. Every
// arrival instant folds into an FNV digest; the constant below pins the
// network model's timing end to end (queueing, calibration, FIFO order).
// If a deliberate model change moves it, re-pin from the test failure.
func TestTwoMachineEchoGoldenDigest(t *testing.T) {
	const want = "566e563acc4f9b7e"
	s := sim.New(42)
	defer s.Close()
	nw := New(s, 2, TenGbE())
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	echoes := 0
	s.At(0, func() {
		for i := 0; i < 64; i++ {
			i := i
			size := (i*37)%1500 + 1
			nw.Send(0, 1, size, nil, func() {
				word(uint64(i))
				word(uint64(s.Now()))
				nw.Send(1, 0, size/2+1, nil, func() {
					word(uint64(s.Now()))
					echoes++
				})
			})
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if echoes != 64 {
		t.Fatalf("echoes = %d, want 64", echoes)
	}
	c := nw.Counters()
	word(uint64(c.Msgs))
	word(uint64(c.Bytes))
	got := fmt.Sprintf("%016x", h.Sum64())
	if got != want {
		t.Errorf("echo digest = %s, want %s", got, want)
	}
}
