// Package aio is KVell's batched asynchronous I/O engine (§5.4), modeling
// the Linux AIO io_submit/io_getevents interface: a worker submits up to
// BatchSize requests with a single system call, amortizing syscall CPU cost
// over the batch, and later collects completions. Because each worker owns
// one I/O engine bound to one disk, the device queue length is bounded by
// (batch size × workers per disk), the property §4.3 relies on to get both
// high bandwidth and low latency.
package aio

import (
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/trace"
)

// IO is a single asynchronous page request. Tag carries engine state
// through to completion. IO values may be pooled by the worker: the device
// request and completion callback are embedded and wired once, so resubmitting
// a recycled IO allocates nothing.
type IO struct {
	Op   device.Op
	Page int64
	Buf  []byte
	Tag  any
	// Trace, if set, attributes the device time of this I/O to a request's
	// trace context; Created backdates its queue wait to when the I/O joined
	// the worker's batch.
	Trace   *trace.Ctx
	Created env.Time

	eng  *Engine
	req  device.Request
	done func()
}

// Completed returns the device's predicted completion time for the last
// submission of this I/O (valid once the I/O is returned by GetEvents).
func (io *IO) Completed() env.Time { return io.req.Completed }

// Engine is a per-worker asynchronous I/O context.
type Engine struct {
	dev device.Disk

	mu        env.Mutex
	cond      env.Cond
	completed []*IO
	spare     []*IO // previous completion batch, recycled as the next list
	inflight  int

	// Stats
	Syscalls  int64
	Submitted int64

	// ChargeSyscalls disables syscall CPU accounting when false (used by
	// recovery, which the paper measures in I/O time).
	ChargeSyscalls bool
}

// DeadDevice is implemented by devices that can die mid-run (the fault
// injector's wrapped disk). Once Dead reports true the device accepts no
// further I/O: submitted requests vanish and never complete.
type DeadDevice interface{ Dead() bool }

// New returns an I/O engine for dev using e's synchronization primitives.
func New(e env.Env, dev device.Disk) *Engine {
	a := &Engine{dev: dev, ChargeSyscalls: true}
	a.mu = e.NewMutex()
	a.cond = e.NewCond(a.mu)
	return a
}

// Disk returns the underlying device.
func (a *Engine) Disk() device.Disk { return a.dev }

// Inflight returns the number of submitted-but-uncollected requests
// (includes completions not yet returned by GetEvents).
func (a *Engine) Inflight() int { return a.inflight }

// Submit issues a batch of requests with the cost of one system call
// (io_submit). Completion data becomes available via GetEvents.
func (a *Engine) Submit(c env.Ctx, ios []*IO) {
	if len(ios) == 0 {
		return
	}
	if dd, ok := a.dev.(DeadDevice); ok && dd.Dead() {
		// The machine died mid-run: the syscall never executes (no CPU
		// charge) and the requests are lost. They still count as in flight
		// so a worker's GetEvents parks instead of spinning — nothing will
		// ever complete them, and sim.Close unwinds the parked proc.
		a.mu.Lock(c)
		a.inflight += len(ios)
		a.mu.Unlock(c)
		return
	}
	if a.ChargeSyscalls {
		c.CPU(costs.Syscall + env.Time(len(ios))*costs.SyscallPerReq)
	}
	a.Syscalls++
	a.Submitted += int64(len(ios))
	a.mu.Lock(c)
	a.inflight += len(ios)
	a.mu.Unlock(c)
	for _, io := range ios {
		if io.done == nil || io.eng != a {
			io := io
			io.eng = a
			io.done = func() {
				// Runs on the simulation scheduler or a real executor
				// goroutine; both may take the mutex (never held across a
				// park by the worker).
				a.mu.Lock(nil)
				a.completed = append(a.completed, io)
				a.mu.Unlock(nil)
				a.cond.Signal(nil)
			}
		}
		io.req = device.Request{Op: io.Op, Page: io.Page, Buf: io.Buf, Done: io.done,
			Trace: io.Trace, Enqueued: io.Created}
		a.dev.Submit(&io.req)
	}
}

// GetEvents blocks until at least min completions are available (or none
// can ever arrive) and returns them, charging one system call
// (io_getevents). min is clamped to the number of requests in flight.
// The returned slice is only valid until the next GetEvents call, which
// recycles its backing array.
func (a *Engine) GetEvents(c env.Ctx, min int) []*IO {
	a.mu.Lock(c)
	if min > a.inflight {
		min = a.inflight
	}
	if min <= 0 && len(a.completed) == 0 {
		a.mu.Unlock(c)
		return nil
	}
	for len(a.completed) < min {
		a.cond.Wait(c)
	}
	out := a.completed
	// Ping-pong the two batch lists: the caller finishes with the returned
	// slice before calling GetEvents again, so its array can back the next
	// completion list instead of a fresh allocation.
	a.completed = a.spare[:0]
	a.spare = out
	a.inflight -= len(out)
	a.mu.Unlock(c)
	if a.ChargeSyscalls {
		c.CPU(costs.Syscall + env.Time(len(out))*costs.SyscallPerReq/4)
	}
	return out
}
