package aio

import (
	"testing"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/sim"
)

func TestBatchedSubmitCollectsAll(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 4)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	a := New(e, disk)
	var got int
	e.Go("worker", func(c env.Ctx) {
		var ios []*IO
		for i := 0; i < 10; i++ {
			ios = append(ios, &IO{Op: device.Write, Page: int64(i), Buf: make([]byte, device.PageSize), Tag: i})
		}
		a.Submit(c, ios)
		if a.Inflight() != 10 {
			t.Errorf("inflight = %d", a.Inflight())
		}
		for got < 10 {
			evs := a.GetEvents(c, 1)
			got += len(evs)
		}
		if a.Inflight() != 0 {
			t.Errorf("inflight after drain = %d", a.Inflight())
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got != 10 {
		t.Fatalf("collected %d completions", got)
	}
	if a.Syscalls == 0 || a.Submitted != 10 {
		t.Fatalf("stats: syscalls=%d submitted=%d", a.Syscalls, a.Submitted)
	}
}

func TestSubmitChargesOneSyscallPerBatch(t *testing.T) {
	// Batching is the point (§5.4): CPU per I/O must drop with batch size.
	perIO := func(batch int) env.Time {
		s := sim.New(1)
		e := sim.NewEnv(s, 1)
		disk := device.NewSimDisk(s, device.Optane(), nil)
		a := New(e, disk)
		const total = 64
		e.Go("worker", func(c env.Ctx) {
			done := 0
			for done < total {
				var ios []*IO
				for i := 0; i < batch; i++ {
					ios = append(ios, &IO{Op: device.Write, Page: int64(i), Buf: make([]byte, device.PageSize)})
				}
				a.Submit(c, ios)
				for in := batch; in > 0; {
					in -= len(a.GetEvents(c, 1))
				}
				done += batch
			}
		})
		if err := s.Run(-1); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return env.Time(e.CPUs.Station().BusyTime() / total)
	}
	one, sixtyFour := perIO(1), perIO(64)
	if sixtyFour*2 > one {
		t.Fatalf("batching ineffective: per-IO CPU %dns (batch 1) vs %dns (batch 64)", one, sixtyFour)
	}
}

func TestGetEventsMinClamped(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 2)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	a := New(e, disk)
	e.Go("worker", func(c env.Ctx) {
		// Nothing in flight: GetEvents must not block.
		if evs := a.GetEvents(c, 1); evs != nil {
			t.Errorf("GetEvents on idle engine returned %v", evs)
		}
		a.Submit(c, []*IO{{Op: device.Write, Page: 1, Buf: make([]byte, device.PageSize)}})
		// min larger than inflight is clamped.
		evs := a.GetEvents(c, 99)
		if len(evs) != 1 {
			t.Errorf("clamped GetEvents returned %d", len(evs))
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestChargeSyscallsToggle(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 1)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	a := New(e, disk)
	a.ChargeSyscalls = false
	e.Go("worker", func(c env.Ctx) {
		a.Submit(c, []*IO{{Op: device.Read, Page: 0, Buf: make([]byte, device.PageSize)}})
		a.GetEvents(c, 1)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if busy := e.CPUs.Station().BusyTime(); busy >= costs.Syscall {
		t.Fatalf("CPU charged (%d) despite ChargeSyscalls=false", busy)
	}
}

func TestRealEnvAIO(t *testing.T) {
	e := env.NewReal()
	disk := device.NewRealDisk(device.NewMemStore(), 2, false)
	defer disk.Close()
	a := New(e, disk)
	done := make(chan struct{})
	e.Go("worker", func(c env.Ctx) {
		defer close(done)
		buf := make([]byte, device.PageSize)
		buf[0] = 0xEE
		a.Submit(c, []*IO{{Op: device.Write, Page: 5, Buf: buf}})
		for a.Inflight() > 0 {
			a.GetEvents(c, 1)
		}
		rbuf := make([]byte, device.PageSize)
		a.Submit(c, []*IO{{Op: device.Read, Page: 5, Buf: rbuf}})
		evs := a.GetEvents(c, 1)
		if len(evs) != 1 || evs[0].Buf[0] != 0xEE {
			t.Error("real AIO roundtrip failed")
		}
	})
	<-done
}
