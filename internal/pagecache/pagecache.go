// Package pagecache implements KVell's internal page cache (§5.3): a
// per-worker LRU cache of 4KB disk pages, indexed by a B-tree. The paper
// first used a hash table as the index and observed up to 100ms tail
// latencies when the table grew; the hash variant is kept here as an
// ablation (IndexHash) and reports growth events so the engine can charge
// the corresponding CPU spike.
//
// KVell's cache never buffers dirty data — updates are flushed to disk
// immediately — so entries carry no dirty bit.
package pagecache

import (
	"encoding/binary"

	"kvell/internal/btree"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
)

// IndexKind selects the cache-index data structure.
type IndexKind uint8

// Index kinds.
const (
	IndexBTree IndexKind = iota // production choice (predictable latency)
	IndexHash                   // ablation: fast average, 100ms growth spikes
)

type entry struct {
	page       int64
	data       []byte
	prev, next *entry // LRU list; head = MRU
	pinned     bool
}

// Cache is a fixed-capacity LRU page cache. Not safe for concurrent use
// (KVell shards one per worker).
type Cache struct {
	capacity int
	kind     IndexKind

	tree *btree.Tree
	hash map[int64]*entry
	// hashGrowAt is the size at which the next simulated hash growth
	// happens (power-of-two doubling, like uthash).
	hashGrowAt int

	entries map[int64]*entry // page -> entry (storage; index cost modeled separately)
	head    *entry
	tail    *entry

	hits, misses int64
	// GrewHash is set (and must be cleared by the caller) when the last
	// Insert triggered a simulated hash-table growth.
	GrewHash bool
}

// New returns a cache holding up to capacity pages with the given index.
func New(capacity int, kind IndexKind) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		capacity:   capacity,
		kind:       kind,
		entries:    make(map[int64]*entry),
		hashGrowAt: 1024,
	}
	if kind == IndexBTree {
		c.tree = btree.New()
	}
	return c
}

// Capacity returns the page capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return len(c.entries) }

// Hits and Misses return cumulative lookup counters.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// LookupCost returns the CPU cost of one index lookup, for the engine to
// charge: B-tree descent depth × per-node cost, or one hash probe.
func (c *Cache) LookupCost() env.Time {
	if c.kind == IndexBTree {
		return env.Time(c.tree.Depth()) * costs.BTreeNode
	}
	return costs.HashLookup
}

// InsertCost returns the CPU cost of the last Insert, including a hash
// growth spike if one occurred (the caller should add it after Insert).
func (c *Cache) InsertCost() env.Time {
	cost := c.LookupCost()
	if c.GrewHash {
		cost += costs.HashGrow
		c.GrewHash = false
	}
	return cost
}

func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// push front
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the cached page data (nil on miss) and promotes it to MRU.
// The returned slice is the cache's own storage: the engine may mutate it
// in place when applying an update it is also writing to disk.
func (c *Cache) Get(page int64) []byte {
	e, ok := c.entries[page]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.touch(e)
	return e.data
}

// Contains reports whether page is cached without promoting it.
func (c *Cache) Contains(page int64) bool {
	_, ok := c.entries[page]
	return ok
}

// Insert adds page with data (which the cache takes ownership of),
// evicting the LRU page if at capacity. It returns the evicted page number
// (or -1). Inserting an already-present page replaces its data.
func (c *Cache) Insert(page int64, data []byte) (evicted int64) {
	evicted = -1
	if e, ok := c.entries[page]; ok {
		e.data = data
		c.touch(e)
		return evicted
	}
	if len(c.entries) >= c.capacity {
		// Evict from the tail, skipping pinned entries.
		v := c.tail
		for v != nil && v.pinned {
			v = v.prev
		}
		if v != nil {
			c.remove(v)
			evicted = v.page
		}
	}
	e := &entry{page: page, data: data}
	c.entries[page] = e
	c.indexInsert(page, e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	return evicted
}

func (c *Cache) indexInsert(page int64, e *entry) {
	switch c.kind {
	case IndexBTree:
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(page))
		c.tree.Put(k[:], uint64(page))
	case IndexHash:
		if c.hash == nil {
			c.hash = make(map[int64]*entry)
		}
		c.hash[page] = e
		if len(c.hash) >= c.hashGrowAt {
			c.hashGrowAt *= 2
			c.GrewHash = true
		}
	}
}

func (c *Cache) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	delete(c.entries, e.page)
	switch c.kind {
	case IndexBTree:
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(e.page))
		c.tree.Delete(k[:])
	case IndexHash:
		delete(c.hash, e.page)
	}
}

// Remove drops page from the cache if present.
func (c *Cache) Remove(page int64) {
	if e, ok := c.entries[page]; ok {
		c.remove(e)
	}
}

// Pin marks page non-evictable (KVell pins the append-tail page of each
// slab so fresh appends need no read-modify-write).
func (c *Cache) Pin(page int64) {
	if e, ok := c.entries[page]; ok {
		e.pinned = true
	}
}

// Unpin clears the pin.
func (c *Cache) Unpin(page int64) {
	if e, ok := c.entries[page]; ok {
		e.pinned = false
	}
}

// PageBuf allocates a page-sized buffer (helper for cache fills).
func PageBuf() []byte { return make([]byte, device.PageSize) }
