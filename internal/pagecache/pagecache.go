// Package pagecache implements KVell's internal page cache (§5.3): a
// per-worker LRU cache of 4KB disk pages, indexed by a B-tree. The paper
// first used a hash table as the index and observed up to 100ms tail
// latencies when the table grew; the hash variant is kept here as an
// ablation (IndexHash) and reports growth events so the engine can charge
// the corresponding CPU spike.
//
// KVell's cache never buffers dirty data — updates are flushed to disk
// immediately — so entries carry no dirty bit.
//
// Internally the cache is allocation-free in steady state: pages live in a
// reusable frame arena, the LRU list is intrusive (int32 prev/next indices
// embedded in frames), and page lookup goes through an open-addressing hash
// table with linear probing and backward-shift deletion. Hits, evictions and
// re-inserts recycle frames instead of allocating. (The simulated index
// *cost* charged to the engine is modeled separately: a real B-tree over
// page numbers for IndexBTree so LookupCost tracks its depth, or a constant
// probe cost plus growth spikes for IndexHash.)
package pagecache

import (
	"encoding/binary"

	"kvell/internal/btree"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
)

// IndexKind selects the cache-index data structure.
type IndexKind uint8

// Index kinds.
const (
	IndexBTree IndexKind = iota // production choice (predictable latency)
	IndexHash                   // ablation: fast average, 100ms growth spikes
)

// frame is one cached page. Frames are arena-allocated and recycled through
// a free list; the LRU list is threaded through prev/next frame indices so
// promotion and eviction never touch the allocator.
type frame struct {
	page       int64
	data       []byte
	prev, next int32 // LRU list indices; -1 = none; head = MRU
	pinned     bool
}

const nilIdx = int32(-1)

// Cache is a fixed-capacity LRU page cache. Not safe for concurrent use
// (KVell shards one per worker).
type Cache struct {
	capacity int
	kind     IndexKind

	tree *btree.Tree
	// hashGrowAt is the size at which the next simulated hash growth
	// happens (power-of-two doubling, like uthash).
	hashGrowAt int

	frames []frame
	free   []int32 // recycled frame indices
	head   int32
	tail   int32
	size   int

	// Open-addressing page->frame table (linear probing, backward-shift
	// delete). slots holds frame indices, -1 = empty.
	slots []int32

	hits, misses int64
	// GrewHash is set (and must be cleared by the caller) when the last
	// Insert triggered a simulated hash-table growth.
	GrewHash bool
}

// New returns a cache holding up to capacity pages with the given index.
func New(capacity int, kind IndexKind) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		capacity:   capacity,
		kind:       kind,
		frames:     make([]frame, 0, capacity),
		free:       make([]int32, 0, capacity),
		head:       nilIdx,
		tail:       nilIdx,
		hashGrowAt: 1024,
	}
	// Size the probe table for the full cache at <50% load so steady state
	// never rehashes.
	n := 16
	for n < 2*capacity {
		n *= 2
	}
	c.slots = newSlots(n)
	if kind == IndexBTree {
		c.tree = btree.New()
	}
	return c
}

func newSlots(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = nilIdx
	}
	return s
}

// hashPage mixes the page number (Fibonacci hashing + xor-fold) so that
// sequential page numbers spread across the table.
func hashPage(page int64) uint64 {
	h := uint64(page) * 0x9E3779B97F4A7C15
	return h ^ (h >> 29)
}

// lookup returns the frame index for page, or -1.
func (c *Cache) lookup(page int64) int32 {
	slots, frames := c.slots, c.frames
	mask := uint64(len(slots) - 1)
	for i := hashPage(page) & mask; ; i = (i + 1) & mask {
		fi := slots[i]
		if fi == nilIdx {
			return nilIdx
		}
		if frames[fi].page == page {
			return fi
		}
	}
}

// tableInsert adds fi under its page, growing the table if the load factor
// would pass 3/4 (only possible when pinned pages hold the cache above
// capacity).
func (c *Cache) tableInsert(fi int32) {
	if 4*(c.size+1) > 3*len(c.slots) {
		old := c.slots
		c.slots = newSlots(2 * len(old))
		for _, ofi := range old {
			if ofi != nilIdx {
				c.tableInsertNoGrow(ofi)
			}
		}
	}
	c.tableInsertNoGrow(fi)
}

func (c *Cache) tableInsertNoGrow(fi int32) {
	mask := uint64(len(c.slots) - 1)
	i := hashPage(c.frames[fi].page) & mask
	for c.slots[i] != nilIdx {
		i = (i + 1) & mask
	}
	c.slots[i] = fi
}

// tableRemove deletes page's slot using backward-shift deletion, keeping
// probe chains contiguous without tombstones.
func (c *Cache) tableRemove(page int64) {
	mask := uint64(len(c.slots) - 1)
	i := hashPage(page) & mask
	for {
		fi := c.slots[i]
		if fi == nilIdx {
			return
		}
		if c.frames[fi].page == page {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		c.slots[i] = nilIdx
		for {
			j = (j + 1) & mask
			fi := c.slots[j]
			if fi == nilIdx {
				return
			}
			k := hashPage(c.frames[fi].page) & mask
			// The entry at j can backfill slot i iff its home slot k is
			// cyclically outside (i, j] — i.e. its probe path crosses i.
			if (i < j && (k <= i || k > j)) || (i > j && k <= i && k > j) {
				c.slots[i] = fi
				i = j
				break
			}
		}
	}
}

// Capacity returns the page capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return c.size }

// Hits and Misses return cumulative lookup counters.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// LookupCost returns the CPU cost of one index lookup, for the engine to
// charge: B-tree descent depth × per-node cost, or one hash probe.
func (c *Cache) LookupCost() env.Time {
	if c.kind == IndexBTree {
		return env.Time(c.tree.Depth()) * costs.BTreeNode
	}
	return costs.HashLookup
}

// InsertCost returns the CPU cost of the last Insert, including a hash
// growth spike if one occurred (the caller should add it after Insert).
func (c *Cache) InsertCost() env.Time {
	cost := c.LookupCost()
	if c.GrewHash {
		cost += costs.HashGrow
		c.GrewHash = false
	}
	return cost
}

// unlink removes frame fi from the LRU list.
func (c *Cache) unlink(fi int32) {
	f := &c.frames[fi]
	if f.prev != nilIdx {
		c.frames[f.prev].next = f.next
	} else {
		c.head = f.next
	}
	if f.next != nilIdx {
		c.frames[f.next].prev = f.prev
	} else {
		c.tail = f.prev
	}
}

// pushFront makes frame fi the MRU.
func (c *Cache) pushFront(fi int32) {
	f := &c.frames[fi]
	f.prev = nilIdx
	f.next = c.head
	if c.head != nilIdx {
		c.frames[c.head].prev = fi
	}
	c.head = fi
	if c.tail == nilIdx {
		c.tail = fi
	}
}

func (c *Cache) touch(fi int32) {
	if c.head == fi {
		return
	}
	// fi is not the head, so it has a predecessor and the list is non-empty;
	// the branches unlink+pushFront would re-check are resolved statically.
	frames := c.frames
	f := &frames[fi]
	frames[f.prev].next = f.next
	if f.next != nilIdx {
		frames[f.next].prev = f.prev
	} else {
		c.tail = f.prev
	}
	f.prev = nilIdx
	f.next = c.head
	frames[c.head].prev = fi
	c.head = fi
}

// Get returns the cached page data (nil on miss) and promotes it to MRU.
// The returned slice is the cache's own storage: the engine may mutate it
// in place when applying an update it is also writing to disk.
func (c *Cache) Get(page int64) []byte {
	fi := c.lookup(page)
	if fi == nilIdx {
		c.misses++
		return nil
	}
	c.hits++
	c.touch(fi)
	return c.frames[fi].data
}

// Contains reports whether page is cached without promoting it.
func (c *Cache) Contains(page int64) bool {
	return c.lookup(page) != nilIdx
}

// Insert adds page with data (which the cache takes ownership of),
// evicting the LRU page if at capacity. It returns the evicted page number
// (or -1). Inserting an already-present page replaces its data.
func (c *Cache) Insert(page int64, data []byte) (evicted int64) {
	evicted, _ = c.InsertTake(page, data)
	return evicted
}

// InsertTake is Insert, but also hands back the evicted page's data buffer
// (nil if nothing was evicted). The buffer is no longer referenced by the
// cache, so the caller may recycle it — but only after any in-flight disk
// writes that captured it have been submitted.
func (c *Cache) InsertTake(page int64, data []byte) (evicted int64, evictedData []byte) {
	evicted = -1
	if fi := c.lookup(page); fi != nilIdx {
		c.frames[fi].data = data
		c.touch(fi)
		return evicted, nil
	}
	if c.size >= c.capacity {
		// Evict from the tail, skipping pinned entries.
		v := c.tail
		for v != nilIdx && c.frames[v].pinned {
			v = c.frames[v].prev
		}
		if v != nilIdx {
			evicted = c.frames[v].page
			evictedData = c.frames[v].data
			c.removeFrame(v)
		}
	}
	var fi int32
	if n := len(c.free); n > 0 {
		fi = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		c.frames = append(c.frames, frame{})
		fi = int32(len(c.frames) - 1)
	}
	f := &c.frames[fi]
	f.page = page
	f.data = data
	f.pinned = false
	c.tableInsert(fi)
	c.size++
	c.pushFront(fi)
	c.indexInsert(page)
	return evicted, evictedData
}

// indexInsert maintains the simulated index cost model (real B-tree, or
// hash growth accounting).
func (c *Cache) indexInsert(page int64) {
	switch c.kind {
	case IndexBTree:
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(page))
		c.tree.Put(k[:], uint64(page))
	case IndexHash:
		if c.size >= c.hashGrowAt {
			c.hashGrowAt *= 2
			c.GrewHash = true
		}
	}
}

// removeFrame unlinks fi from the LRU and both indexes and recycles it.
func (c *Cache) removeFrame(fi int32) {
	f := &c.frames[fi]
	c.unlink(fi)
	c.tableRemove(f.page)
	if c.kind == IndexBTree {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(f.page))
		c.tree.Delete(k[:])
	}
	f.data = nil
	c.size--
	c.free = append(c.free, fi)
}

// Remove drops page from the cache if present.
func (c *Cache) Remove(page int64) {
	if fi := c.lookup(page); fi != nilIdx {
		c.removeFrame(fi)
	}
}

// RemoveTake is Remove, but hands back the dropped page's data buffer (nil
// if the page was not cached) under the same recycling contract as
// InsertTake.
func (c *Cache) RemoveTake(page int64) []byte {
	fi := c.lookup(page)
	if fi == nilIdx {
		return nil
	}
	data := c.frames[fi].data
	c.removeFrame(fi)
	return data
}

// Pin marks page non-evictable (KVell pins the append-tail page of each
// slab so fresh appends need no read-modify-write).
func (c *Cache) Pin(page int64) {
	if fi := c.lookup(page); fi != nilIdx {
		c.frames[fi].pinned = true
	}
}

// Unpin clears the pin.
func (c *Cache) Unpin(page int64) {
	if fi := c.lookup(page); fi != nilIdx {
		c.frames[fi].pinned = false
	}
}

// PageBuf allocates a page-sized buffer (helper for cache fills).
func PageBuf() []byte { return make([]byte, device.PageSize) }
