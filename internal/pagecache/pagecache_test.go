package pagecache

import (
	"testing"

	"kvell/internal/costs"
)

func page(b byte) []byte {
	p := PageBuf()
	p[0] = b
	return p
}

func TestHitMissAndLRUEviction(t *testing.T) {
	c := New(3, IndexBTree)
	for i := int64(0); i < 3; i++ {
		if ev := c.Insert(i, page(byte(i))); ev != -1 {
			t.Fatalf("unexpected eviction %d", ev)
		}
	}
	if got := c.Get(0); got == nil || got[0] != 0 {
		t.Fatal("miss on cached page 0")
	}
	// LRU is now 1 (0 was touched, 2 newer than 1).
	if ev := c.Insert(3, page(3)); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if c.Get(1) != nil {
		t.Fatal("evicted page still present")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestInsertReplacesExisting(t *testing.T) {
	c := New(2, IndexBTree)
	c.Insert(7, page(1))
	c.Insert(7, page(2))
	if c.Len() != 1 {
		t.Fatalf("len = %d after duplicate insert", c.Len())
	}
	if got := c.Get(7); got[0] != 2 {
		t.Fatal("replacement data lost")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	c := New(2, IndexBTree)
	c.Insert(1, page(1))
	c.Insert(2, page(2))
	c.Pin(1)
	c.Get(2) // make 1 the LRU
	if ev := c.Insert(3, page(3)); ev != 2 {
		t.Fatalf("evicted %d, want 2 (1 is pinned)", ev)
	}
	if c.Get(1) == nil {
		t.Fatal("pinned page evicted")
	}
	c.Unpin(1)
	c.Get(3)
	c.Get(2) // 1 is LRU again... (2 was evicted; reinsert)
	if ev := c.Insert(4, page(4)); ev != 1 {
		t.Fatalf("after unpin, evicted %d, want 1", ev)
	}
}

func TestRemove(t *testing.T) {
	c := New(4, IndexBTree)
	c.Insert(1, page(1))
	c.Insert(2, page(2))
	c.Remove(1)
	if c.Get(1) != nil || c.Len() != 1 {
		t.Fatal("remove failed")
	}
	c.Remove(99) // no-op
}

func TestBTreeIndexCostIsBounded(t *testing.T) {
	c := New(100_000, IndexBTree)
	for i := int64(0); i < 100_000; i++ {
		c.Insert(i, nil)
	}
	if cost := c.LookupCost(); cost > 8*costs.BTreeNode {
		t.Fatalf("lookup cost %d too high", cost)
	}
	if cost := c.InsertCost(); cost >= costs.HashGrow {
		t.Fatal("B-tree index must not have growth spikes")
	}
}

func TestHashIndexGrowthSpike(t *testing.T) {
	// The paper's uthash anecdote: large inserts occasionally pay a
	// multi-ms growth cost (§5.3).
	c := New(10_000, IndexHash)
	sawSpike := false
	for i := int64(0); i < 5000; i++ {
		c.Insert(i, nil)
		if c.InsertCost() >= costs.HashGrow {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Fatal("hash index never grew — ablation spike missing")
	}
}

func TestEvictionOrderScan(t *testing.T) {
	// Fill, touch in a known order, and verify full eviction order.
	c := New(4, IndexBTree)
	for i := int64(0); i < 4; i++ {
		c.Insert(i, nil)
	}
	c.Get(0)
	c.Get(2)
	// LRU order now: 1, 3, 0, 2 (oldest first).
	want := []int64{1, 3, 0, 2}
	for n, w := range want {
		if ev := c.Insert(100+int64(n), nil); ev != w {
			t.Fatalf("eviction %d = %d, want %d", n, ev, w)
		}
	}
}
