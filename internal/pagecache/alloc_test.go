package pagecache

import "testing"

// TestAllocBudgetPagecacheHit pins the hit path (lookup + LRU promotion)
// at zero allocations.
func TestAllocBudgetPagecacheHit(t *testing.T) {
	c := New(1024, IndexBTree)
	for i := int64(0); i < 1024; i++ {
		c.Insert(i, nil)
	}
	i := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Get(i % 1024)
		i += 37
	}); n != 0 {
		t.Errorf("Get hit allocates %v per lookup, want 0", n)
	}
}

// TestAllocBudgetPagecacheMiss pins the miss probe at zero allocations.
func TestAllocBudgetPagecacheMiss(t *testing.T) {
	c := New(1024, IndexBTree)
	for i := int64(0); i < 1024; i++ {
		c.Insert(i, nil)
	}
	i := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Get(1024 + i%1024)
		i += 37
	}); n != 0 {
		t.Errorf("Get miss allocates %v per lookup, want 0", n)
	}
}

// TestAllocBudgetPagecacheEvictCycle pins the steady-state insert+evict
// cycle at zero allocations. The hash-index variant is used because the
// B-tree *cost model* index is a real tree that copies each new page key —
// an intentional part of the simulation, not the frame machinery under test.
func TestAllocBudgetPagecacheEvictCycle(t *testing.T) {
	c := New(512, IndexHash)
	buf := PageBuf()
	for i := int64(0); i < 512; i++ {
		c.Insert(i, buf)
	}
	i := int64(512)
	// Warm: cycle the window once so the probe table reaches steady state.
	for j := 0; j < 2048; j++ {
		_, data := c.InsertTake(i%2048, buf)
		_ = data
		i++
	}
	if n := testing.AllocsPerRun(1000, func() {
		_, data := c.InsertTake(i%2048, buf)
		_ = data
		i++
	}); n != 0 {
		t.Errorf("InsertTake evict cycle allocates %v per insert, want 0", n)
	}
}

// ---- eviction edge cases for the open-addressing + intrusive-LRU rewrite ----

func TestEvictCapacityOne(t *testing.T) {
	c := New(1, IndexBTree)
	a, b := page('a'), page('b')
	if ev := c.Insert(1, a); ev != -1 {
		t.Fatalf("first insert evicted %d", ev)
	}
	ev, data := c.InsertTake(2, b)
	if ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}
	if &data[0] != &a[0] {
		t.Fatal("evicted data is not page 1's buffer")
	}
	if c.Get(1) != nil {
		t.Fatal("page 1 still cached after eviction")
	}
	if got := c.Get(2); got == nil || &got[0] != &b[0] {
		t.Fatal("page 2 not cached")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestReinsertEvictedPage(t *testing.T) {
	c := New(1, IndexBTree)
	a, b := page('a'), page('b')
	c.Insert(1, a)
	c.Insert(2, b)                 // evicts 1
	ev, data := c.InsertTake(1, a) // re-insert the evicted page
	if ev != 2 {
		t.Fatalf("evicted = %d, want 2", ev)
	}
	if &data[0] != &b[0] {
		t.Fatal("evicted data is not page 2's buffer")
	}
	if got := c.Get(1); got == nil || got[0] != 'a' {
		t.Fatal("re-inserted page 1 not retrievable")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestPinDuringEvict(t *testing.T) {
	c := New(2, IndexBTree)
	a, b, d := page('a'), page('b'), page('d')
	c.Insert(1, a)
	c.Insert(2, b) // LRU order: 2 (MRU), 1 (tail)
	c.Pin(1)
	ev, data := c.InsertTake(3, d)
	if ev != 2 {
		t.Fatalf("evicted = %d, want 2 (pinned tail must be skipped)", ev)
	}
	if &data[0] != &b[0] {
		t.Fatal("evicted data is not page 2's buffer")
	}
	if !c.Contains(1) { // Contains: don't promote 1 off the LRU tail
		t.Fatal("pinned page 1 was evicted")
	}
	c.Unpin(1)
	if ev := c.Insert(4, page('e')); ev != 1 {
		t.Fatalf("after Unpin, evicted = %d, want 1", ev)
	}
}

func TestAllPinnedNoEvict(t *testing.T) {
	c := New(1, IndexBTree)
	c.Insert(1, page('a'))
	c.Pin(1)
	ev, data := c.InsertTake(2, page('b'))
	if ev != -1 || data != nil {
		t.Fatalf("evicted = %d with fully pinned cache, want -1", ev)
	}
	// The cache grows past capacity rather than dropping a pinned page.
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Get(1) == nil || c.Get(2) == nil {
		t.Fatal("both pages must stay resident")
	}
}
