package pagecache

import "testing"

func BenchmarkCacheHit(b *testing.B) {
	c := New(10_000, IndexBTree)
	for i := int64(0); i < 10_000; i++ {
		c.Insert(i, nil)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Get(int64(i%10_000)) != nil {
			b.Fatal("unexpected data")
		}
		_ = c.Hits()
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := New(4096, IndexBTree)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Insert(int64(i), nil)
	}
}

// BenchmarkPagecacheHit is the engine-visible hit path: lookup, LRU
// promotion, data return.
func BenchmarkPagecacheHit(b *testing.B) {
	c := New(10_000, IndexBTree)
	data := PageBuf()
	for i := int64(0); i < 10_000; i++ {
		c.Insert(i, data)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Get(int64(i%10_000)) == nil {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkPagecacheMiss is the probe-and-fail path every uncached read
// takes before issuing I/O.
func BenchmarkPagecacheMiss(b *testing.B) {
	c := New(10_000, IndexBTree)
	for i := int64(0); i < 10_000; i++ {
		c.Insert(i, nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Get(10_000+int64(i%10_000)) != nil {
			b.Fatal("unexpected hit")
		}
	}
}
