// Package ycsb generates the YCSB core workloads A-F (Cooper et al., SoCC
// 2010) used throughout the paper's evaluation (Table 4):
//
//	A  write-intensive: 50% updates, 50% reads
//	B  read-intensive:   5% updates, 95% reads
//	C  read-only:       100% reads
//	D  read-latest:      5% inserts, 95% reads (skewed to recent keys)
//	E  scan-intensive:   5% inserts, 95% scans (avg length 50)
//	F  50% read-modify-write, 50% reads
//
// Key-access distributions: uniform, scrambled Zipfian (theta = 0.99, the
// YCSB default) and latest. Item size is configurable; the paper uses 1KB
// records for the main experiments and 64B-4KB for Figure 10.
package ycsb

import (
	"math"
	"math/rand"

	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/slab"
	"kvell/internal/stats"
)

// Distribution selects how record numbers are drawn.
type Distribution uint8

// Distributions.
const (
	Uniform Distribution = iota
	Zipfian
	Latest
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Latest:
		return "latest"
	default:
		return "?"
	}
}

// Workload is an operation mix.
type Workload struct {
	Name      string
	ReadPct   int
	UpdatePct int
	InsertPct int
	ScanPct   int
	RMWPct    int
	// MaxScanLen: scan lengths are uniform in [1, MaxScanLen] (YCSB
	// default 100, giving the paper's average of ~50 items).
	MaxScanLen int
}

// Core returns YCSB core workload w ('A'..'F').
func Core(w byte) Workload {
	switch w {
	case 'A', 'a':
		return Workload{Name: "YCSB-A", ReadPct: 50, UpdatePct: 50}
	case 'B', 'b':
		return Workload{Name: "YCSB-B", ReadPct: 95, UpdatePct: 5}
	case 'C', 'c':
		return Workload{Name: "YCSB-C", ReadPct: 100}
	case 'D', 'd':
		return Workload{Name: "YCSB-D", ReadPct: 95, InsertPct: 5}
	case 'E', 'e':
		return Workload{Name: "YCSB-E", ScanPct: 95, InsertPct: 5, MaxScanLen: 100}
	case 'F', 'f':
		return Workload{Name: "YCSB-F", ReadPct: 50, RMWPct: 50}
	default:
		panic("ycsb: unknown core workload")
	}
}

// zipf is the Gray et al. bounded Zipfian generator YCSB uses, with
// incremental support for a growing record count.
type zipf struct {
	theta        float64
	n            int64
	zetan, zeta2 float64
	alpha, eta   float64
	// halfTheta caches math.Pow(0.5, theta), a constant probed on every
	// draw; hoisting it out of next() does not change any produced bits.
	halfTheta float64
}

// DefaultTheta is the YCSB-standard Zipfian skew parameter.
const DefaultTheta = 0.99

func newZipf(n int64) *zipf { return newZipfTheta(n, DefaultTheta) }

func newZipfTheta(n int64, th float64) *zipf {
	z := &zipf{theta: th, n: n}
	z.zeta2 = zetaStatic(2, th)
	z.zetan = zetaStatic(n, th)
	z.halfTheta = math.Pow(0.5, th)
	z.refresh()
	return z
}

func zetaStatic(n int64, th float64) float64 {
	var s float64
	for i := int64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), th)
	}
	return s
}

func (z *zipf) refresh() {
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(z.n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// grow extends the domain to n (incremental zeta update).
func (z *zipf) grow(n int64) {
	if n <= z.n {
		return
	}
	for i := z.n + 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.n = n
	z.refresh()
}

func (z *zipf) next(r *rand.Rand) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.halfTheta {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// Generator produces a request stream for one workload.
type Generator struct {
	wl       Workload
	dist     Distribution
	itemSize int
	records  int64
	r        *rand.Rand
	z        *zipf
	version  uint64

	// Hot-set shift (SetHotShift): the scrambled-Zipfian head rotates to a
	// seeded pseudo-random offset every shiftEvery of virtual time. now is
	// the virtual clock of the latest FillNextAt; with shiftEvery zero the
	// draw path is untouched and streams are bit-identical to FillNext.
	shiftEvery env.Time
	shiftSeed  int64
	now        env.Time
}

// NewGenerator returns a generator over records initial records producing
// itemSize-byte records (key + value + slab header, so an itemSize of 1024
// occupies exactly one 1KB slab slot, as in the paper's experiments).
func NewGenerator(wl Workload, dist Distribution, records int64, itemSize int, seed int64) *Generator {
	return NewGeneratorTheta(wl, dist, records, itemSize, seed, DefaultTheta)
}

// NewGeneratorTheta is NewGenerator with an explicit Zipfian skew theta
// (ignored for the uniform distribution). theta = DefaultTheta reproduces
// NewGenerator bit for bit; higher values concentrate more of the stream on
// the hottest records.
func NewGeneratorTheta(wl Workload, dist Distribution, records int64, itemSize int, seed int64, theta float64) *Generator {
	g := &Generator{
		wl:       wl,
		dist:     dist,
		itemSize: itemSize,
		records:  records,
		r:        rand.New(rand.NewSource(seed)),
	}
	if dist == Zipfian || dist == Latest {
		g.z = newZipfTheta(records, theta)
	}
	return g
}

// ValueBytes returns the value length for the configured item size.
func (g *Generator) ValueBytes() int {
	v := g.itemSize - slab.HeaderSize - kv.KeyLen
	if v < 1 {
		v = 1
	}
	return v
}

// Records returns the current record count (grows with inserts).
func (g *Generator) Records() int64 { return g.records }

// InitialItems builds the bulk-load dataset (keys in sorted order).
func (g *Generator) InitialItems() []kv.Item {
	items := make([]kv.Item, g.records)
	for i := int64(0); i < g.records; i++ {
		items[i] = kv.Item{Key: kv.Key(i), Value: kv.Value(i, 0, g.ValueBytes())}
	}
	return items
}

// SetHotShift enables deterministic hot-set rotation for the Zipfian
// distribution: every `every` of virtual time the rank-to-record mapping
// rotates by a seeded pseudo-random offset, moving the workload's hot head
// to a different part of the key space — the churn that exercises demotion
// in a tiered store. The rotation draws nothing from the generator's RNG, so
// op mix and rank sequence are unchanged; only the record identities move.
// Pass every = 0 to disable (the default).
func (g *Generator) SetHotShift(every env.Time, seed int64) {
	g.shiftEvery = every
	g.shiftSeed = seed
}

// FillNextAt is FillNext at virtual time now, which selects the hot-set
// epoch when shifting is enabled. With shifting disabled it is FillNext
// exactly (same RNG draws, same bits).
func (g *Generator) FillNextAt(r *kv.Request, now env.Time) {
	g.now = now
	g.FillNext(r)
}

// hotShift returns the current epoch's rotation offset: a splitmix64 mix of
// the seed and the epoch number, reduced to the record domain.
func (g *Generator) hotShift() int64 {
	epoch := uint64(g.now / g.shiftEvery)
	x := uint64(g.shiftSeed)*0x9E3779B97F4A7C15 + epoch
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x % uint64(g.records))
}

// StreamDigest folds the op codes and key hashes of the next n operations
// into an FNV-1a word, advancing the virtual clock by step per op — the
// golden-digest hook for hot-set-shift schedules (the workload analogue of
// ArrivalGen.Digest). It consumes the generator.
func (g *Generator) StreamDigest(n int, step env.Time) uint64 {
	d := stats.NewFNV()
	var r kv.Request
	now := env.Time(0)
	for i := 0; i < n; i++ {
		g.FillNextAt(&r, now)
		d.Word(uint64(r.Op))
		d.Word(kv.Hash64(r.Key))
		now += step
	}
	return uint64(d)
}

// nextRecord draws a record number according to the distribution.
func (g *Generator) nextRecord() int64 {
	switch g.dist {
	case Zipfian:
		// Scrambled Zipfian: spread the hot items over the key space. The
		// key is formatted into a stack buffer only to feed the hash.
		v := g.z.next(g.r)
		if g.shiftEvery > 0 {
			v = (v + g.hotShift()) % g.records
		}
		var kb [kv.KeyLen]byte
		kv.FillKey(kb[:], v)
		return int64(kv.Hash64(kb[:]) % uint64(g.records))
	case Latest:
		v := g.z.next(g.r)
		return g.records - 1 - v
	default:
		return g.r.Int63n(g.records)
	}
}

// fillKey points r.Key at a KeyLen prefix of its existing buffer (or a new
// one) holding record i's key.
func fillKey(r *kv.Request, i int64) {
	if cap(r.Key) >= kv.KeyLen {
		r.Key = r.Key[:kv.KeyLen]
	} else {
		r.Key = make([]byte, kv.KeyLen)
	}
	kv.FillKey(r.Key, i)
}

// fillValue points r.Value at an n-byte prefix of its existing buffer (or a
// new one) holding record i's value at the given version.
func fillValue(r *kv.Request, i int64, version uint64, n int) {
	if cap(r.Value) >= n {
		r.Value = r.Value[:n]
	} else {
		r.Value = make([]byte, n)
	}
	kv.FillValue(r.Value, i, version)
}

// Next produces the next operation. The caller owns the request.
func (g *Generator) Next() *kv.Request {
	r := &kv.Request{}
	g.FillNext(r)
	return r
}

// FillNext writes the next operation into r, reusing r's key and value
// buffers when they are large enough — the allocation-free form of Next for
// callers that recycle completed requests. It draws from the RNG in exactly
// the order Next does, so a stream is bit-identical however it is produced.
// The engine must be done with r (Done invoked) before it is refilled.
func (g *Generator) FillNext(r *kv.Request) {
	p := g.r.Intn(100)
	wl := &g.wl
	r.ScanCount = 0
	switch {
	case p < wl.ReadPct:
		r.Op = kv.OpGet
		fillKey(r, g.nextRecord())
		r.Value = r.Value[:0]
	case p < wl.ReadPct+wl.UpdatePct:
		i := g.nextRecord()
		g.version++
		r.Op = kv.OpUpdate
		fillKey(r, i)
		fillValue(r, i, g.version, g.ValueBytes())
	case p < wl.ReadPct+wl.UpdatePct+wl.RMWPct:
		i := g.nextRecord()
		g.version++
		r.Op = kv.OpRMW
		fillKey(r, i)
		fillValue(r, i, g.version, g.ValueBytes())
	case p < wl.ReadPct+wl.UpdatePct+wl.RMWPct+wl.InsertPct:
		i := g.records
		g.records++
		if g.z != nil {
			g.z.grow(g.records)
		}
		r.Op = kv.OpUpdate
		fillKey(r, i)
		fillValue(r, i, 0, g.ValueBytes())
	default: // scan
		n := 1 + g.r.Intn(wl.MaxScanLen)
		r.Op = kv.OpScan
		fillKey(r, g.nextRecord())
		r.Value = r.Value[:0]
		r.ScanCount = n
	}
}
