package ycsb

import (
	"testing"

	"kvell/internal/kv"
)

// BenchmarkYCSBNextOp measures the steady-state per-operation cost of the
// workload generator: one FillNext into a recycled request.
func BenchmarkYCSBNextOp(b *testing.B) {
	g := NewGenerator(Core('a'), Zipfian, 1_000_000, 1024, 42)
	var r kv.Request
	g.FillNext(&r) // warm the key/value buffers
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.FillNext(&r)
	}
}

// TestAllocBudgetYCSBFillNext pins the generator hot path at zero
// allocations per operation once the request's buffers are warm.
func TestAllocBudgetYCSBFillNext(t *testing.T) {
	for _, w := range []byte{'a', 'b', 'c'} {
		g := NewGenerator(Core(w), Zipfian, 100_000, 1024, 7)
		var r kv.Request
		for i := 0; i < 100; i++ {
			g.FillNext(&r) // warm key/value buffers across op kinds
		}
		if n := testing.AllocsPerRun(1000, func() { g.FillNext(&r) }); n != 0 {
			t.Errorf("workload %c: FillNext allocates %v per op, want 0", w, n)
		}
	}
}
