package ycsb

import (
	"testing"

	"kvell/internal/env"
	"kvell/internal/kv"
)

// Golden digests for the hot-set-shift stream: StreamDigest folds op codes
// and key hashes of the first n operations, advancing the virtual clock by
// step per op, so rotation epochs are crossed mid-stream. On mismatch the
// failure message prints the measured digest; update the constants only for
// changes meant to alter workload streams (mirrors TestArrivalGenGoldenDigest).
func TestHotShiftGoldenDigest(t *testing.T) {
	for _, tc := range []struct {
		name  string
		wl    byte
		seed  int64
		every env.Time
		shift int64
		want  uint64
	}{
		{"shift-b", 'B', 7, 250 * env.Millisecond, 11, 0x59070c8c4ffcdd5a},
		{"shift-c", 'C', 13, 100 * env.Millisecond, 3, 0xa29fe1182f152913},
		{"noshift-b", 'B', 7, 0, 0, 0xbae04e11cd5930f1},
	} {
		g := NewGenerator(Core(tc.wl), Zipfian, 20_000, 1024, tc.seed)
		if tc.every > 0 {
			g.SetHotShift(tc.every, tc.shift)
		}
		if got := g.StreamDigest(100_000, 5*env.Microsecond); got != tc.want {
			t.Errorf("%s: digest %#016x, want %#016x", tc.name, got, tc.want)
		}
	}
}

// TestHotShiftDisabledBitIdentical pins the central determinism contract:
// with shifting disabled, FillNextAt is FillNext — same RNG draws, same keys,
// same values, op for op.
func TestHotShiftDisabledBitIdentical(t *testing.T) {
	a := NewGenerator(Core('B'), Zipfian, 10_000, 1024, 42)
	b := NewGenerator(Core('B'), Zipfian, 10_000, 1024, 42)
	var ra, rb kv.Request
	now := env.Time(0)
	for i := 0; i < 50_000; i++ {
		a.FillNext(&ra)
		b.FillNextAt(&rb, now)
		if ra.Op != rb.Op || string(ra.Key) != string(rb.Key) || string(ra.Value) != string(rb.Value) {
			t.Fatalf("op %d diverged: %v %q vs %v %q", i, ra.Op, ra.Key, rb.Op, rb.Key)
		}
		now += 3 * env.Microsecond
	}
}

// TestHotShiftRotatesHead verifies that crossing an epoch boundary actually
// moves the hot set: the most-frequent keys of consecutive epochs must be
// (mostly) disjoint, while within one epoch the stream stays skewed.
func TestHotShiftRotatesHead(t *testing.T) {
	g := NewGenerator(Core('C'), Zipfian, 20_000, 1024, 5)
	g.SetHotShift(100*env.Millisecond, 17)
	topKeys := func(at env.Time) map[int64]bool {
		counts := map[int64]int{}
		var r kv.Request
		for i := 0; i < 30_000; i++ {
			g.FillNextAt(&r, at)
			counts[kv.KeyNum(r.Key)]++
		}
		top := map[int64]bool{}
		for k, n := range counts {
			if n >= 300 { // ~1% of draws: the Zipfian head
				top[k] = true
			}
		}
		return top
	}
	e0 := topKeys(10 * env.Millisecond)
	e1 := topKeys(110 * env.Millisecond)
	if len(e0) == 0 || len(e1) == 0 {
		t.Fatalf("no hot head found: %d/%d hot keys", len(e0), len(e1))
	}
	overlap := 0
	for k := range e0 {
		if e1[k] {
			overlap++
		}
	}
	if overlap*2 >= len(e0) {
		t.Fatalf("hot head barely moved across epochs: %d/%d keys shared", overlap, len(e0))
	}
}

// The shift path must stay allocation free: it is on the open-loop
// dispatcher's per-operation path.
func TestAllocBudgetHotShiftFillNext(t *testing.T) {
	g := NewGenerator(Core('B'), Zipfian, 100_000, 1024, 7)
	g.SetHotShift(50*env.Millisecond, 9)
	var r kv.Request
	now := env.Time(0)
	for i := 0; i < 100; i++ {
		g.FillNextAt(&r, now)
		now += env.Microsecond
	}
	if n := testing.AllocsPerRun(1000, func() {
		now += env.Microsecond
		g.FillNextAt(&r, now)
	}); n != 0 {
		t.Errorf("FillNextAt allocates %v per op, want 0", n)
	}
}
