package ycsb

import (
	"math/rand"
	"sort"
	"testing"

	"kvell/internal/kv"
)

func countOps(g *Generator, n int) map[kv.OpType]int {
	m := map[kv.OpType]int{}
	for i := 0; i < n; i++ {
		m[g.Next().Op]++
	}
	return m
}

func TestWorkloadMixes(t *testing.T) {
	const n = 20000
	cases := []struct {
		w   byte
		op  kv.OpType
		pct int
	}{
		{'A', kv.OpUpdate, 50},
		{'B', kv.OpGet, 95},
		{'C', kv.OpGet, 100},
		{'D', kv.OpGet, 95},
		{'E', kv.OpScan, 95},
		{'F', kv.OpRMW, 50},
	}
	for _, c := range cases {
		g := NewGenerator(Core(c.w), Uniform, 10_000, 1024, 1)
		got := countOps(g, n)
		frac := 100 * got[c.op] / n
		if frac < c.pct-2 || frac > c.pct+2 {
			t.Errorf("workload %c: %v = %d%%, want ~%d%%", c.w, c.op, frac, c.pct)
		}
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	g := NewGenerator(Core('C'), Uniform, 1000, 1024, 2)
	seen := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		r := g.Next()
		num := kv.KeyNum(r.Key)
		if num < 0 || num >= 1000 {
			t.Fatalf("key %q out of range", r.Key)
		}
		seen[num] = true
	}
	if len(seen) < 950 {
		t.Fatalf("uniform draw covered only %d/1000 keys", len(seen))
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	g := NewGenerator(Core('C'), Zipfian, 100_000, 1024, 3)
	counts := map[int64]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[kv.KeyNum(g.Next().Key)]++
	}
	// Top-20 keys should take a large share under theta=0.99.
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	for i := 0; i < 20 && i < len(freqs); i++ {
		top += freqs[i]
	}
	if float64(top)/n < 0.15 {
		t.Fatalf("top-20 keys got only %.1f%% of zipfian draws", 100*float64(top)/n)
	}
	if len(counts) < 1000 {
		t.Fatalf("zipfian touched only %d distinct keys", len(counts))
	}
}

func TestLatestFavorsRecentKeys(t *testing.T) {
	g := NewGenerator(Core('D'), Latest, 10_000, 1024, 4)
	recent, total := 0, 0
	for i := 0; i < 20_000; i++ {
		r := g.Next()
		if r.Op != kv.OpGet {
			continue
		}
		total++
		if kv.KeyNum(r.Key) >= g.Records()-100 {
			recent++
		}
	}
	if float64(recent)/float64(total) < 0.3 {
		t.Fatalf("latest distribution: only %.1f%% of reads in newest 100 keys", 100*float64(recent)/float64(total))
	}
}

func TestInsertsGrowKeySpaceContiguously(t *testing.T) {
	g := NewGenerator(Core('D'), Latest, 1000, 1024, 5)
	var inserted []int64
	for i := 0; i < 5000; i++ {
		r := g.Next()
		if r.Op == kv.OpUpdate { // D's writes are inserts of new keys
			inserted = append(inserted, kv.KeyNum(r.Key))
		}
	}
	if len(inserted) == 0 {
		t.Fatal("no inserts generated")
	}
	for j, k := range inserted {
		if k != 1000+int64(j) {
			t.Fatalf("insert %d got key %d, want %d", j, k, 1000+int64(j))
		}
	}
	if g.Records() != 1000+int64(len(inserted)) {
		t.Fatalf("records = %d", g.Records())
	}
}

func TestScanLengths(t *testing.T) {
	g := NewGenerator(Core('E'), Uniform, 1000, 1024, 6)
	var sum, n int
	for i := 0; i < 10_000; i++ {
		r := g.Next()
		if r.Op != kv.OpScan {
			continue
		}
		if r.ScanCount < 1 || r.ScanCount > 100 {
			t.Fatalf("scan length %d out of [1,100]", r.ScanCount)
		}
		sum += r.ScanCount
		n++
	}
	avg := float64(sum) / float64(n)
	if avg < 45 || avg > 55 {
		t.Fatalf("average scan length %.1f, want ~50 (paper)", avg)
	}
}

func TestItemSizeMapsToSlabStride(t *testing.T) {
	// A 1024-byte item (key+value+header) must fit exactly the paper's
	// "1KB item" notion: value + key + header == 1024.
	g := NewGenerator(Core('A'), Uniform, 100, 1024, 7)
	if got := g.ValueBytes() + kv.KeyLen + 15; got != 1024 {
		t.Fatalf("record footprint = %d, want 1024", got)
	}
}

func TestZipfDeterminism(t *testing.T) {
	a := NewGenerator(Core('A'), Zipfian, 5000, 1024, 42)
	b := NewGenerator(Core('A'), Zipfian, 5000, 1024, 42)
	for i := 0; i < 1000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Op != rb.Op || string(ra.Key) != string(rb.Key) {
			t.Fatal("generators with equal seeds diverged")
		}
	}
}

func TestZipfValuesInRange(t *testing.T) {
	z := newZipf(1000)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		v := z.next(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
	}
	z.grow(2000)
	hit := false
	for i := 0; i < 100_000; i++ {
		v := z.next(r)
		if v < 0 || v >= 2000 {
			t.Fatalf("zipf draw %d out of grown range", v)
		}
		if v >= 1000 {
			hit = true
		}
	}
	if !hit {
		t.Fatal("grown domain never drawn")
	}
}
