package mvcc

import (
	"bytes"
	"testing"

	"kvell/internal/env"
)

func TestEnvelopeRoundtrip(t *testing.T) {
	cases := []Envelope{
		{Kind: KindCommitPut, StartTS: 7, CommitTS: 9, PrevLoc: NoLoc, Value: []byte("v1")},
		{Kind: KindIntentPut, StartTS: 12, PrevLoc: 0x01000000_00000002, Primary: []byte("pk"), Value: []byte("v2")},
		{Kind: KindIntentDelete, StartTS: 44, PrevLoc: NoLoc, Primary: []byte("pk")},
		{Kind: KindCommitDelete, StartTS: 44, CommitTS: 45, PrevLoc: 3},
		{Kind: KindCommitPut, StartTS: 1, CommitTS: 1, PrevLoc: NoLoc}, // empty value
	}
	for i, e := range cases {
		b := AppendEncode(nil, &e)
		if len(b) != EncodedSize(len(e.Primary), len(e.Value)) {
			t.Fatalf("case %d: encoded %d bytes, want %d", i, len(b), EncodedSize(len(e.Primary), len(e.Value)))
		}
		d, ok := Decode(b)
		if !ok {
			t.Fatalf("case %d: decode failed", i)
		}
		if d.Kind != e.Kind || d.StartTS != e.StartTS || d.CommitTS != e.CommitTS || d.PrevLoc != e.PrevLoc {
			t.Fatalf("case %d: header mismatch: %+v vs %+v", i, d, e)
		}
		if !bytes.Equal(d.Primary, e.Primary) || !bytes.Equal(d.Value, e.Value) {
			t.Fatalf("case %d: payload mismatch", i)
		}
		if d.Committed() != (e.Kind == KindCommitPut || e.Kind == KindCommitDelete) {
			t.Fatalf("case %d: Committed() wrong", i)
		}
		if d.Intent() == d.Committed() {
			t.Fatalf("case %d: Intent/Committed not exclusive", i)
		}
	}
}

func TestEnvelopeDecodeRejectsGarbage(t *testing.T) {
	if _, ok := Decode(nil); ok {
		t.Fatal("decoded nil")
	}
	if _, ok := Decode(make([]byte, HeaderSize-1)); ok {
		t.Fatal("decoded short buffer")
	}
	b := AppendEncode(nil, &Envelope{Kind: KindCommitPut, StartTS: 1, CommitTS: 1, PrevLoc: NoLoc, Value: []byte("x")})
	b[0] = 0x7F
	if _, ok := Decode(b); ok {
		t.Fatal("decoded unknown kind")
	}
	// Primary length pointing past the buffer.
	b2 := AppendEncode(nil, &Envelope{Kind: KindIntentPut, StartTS: 1, PrevLoc: NoLoc, Primary: []byte("pp")})
	b2[25] = 0xFF
	b2[26] = 0xFF
	if _, ok := Decode(b2); ok {
		t.Fatal("decoded oversized primary length")
	}
}

func TestOracleMonotone(t *testing.T) {
	var o Oracle
	last := uint64(0)
	for _, now := range []env.Time{0, 0, 5, 5, 5, 3, 100} {
		ts := o.Next(now)
		if ts <= last {
			t.Fatalf("Next(%d) = %d not > %d", now, ts, last)
		}
		last = ts
	}
	if o.Last() != last {
		t.Fatalf("Last() = %d, want %d", o.Last(), last)
	}
	o.Observe(last + 50)
	if ts := o.Next(0); ts != last+51 {
		t.Fatalf("Next after Observe = %d, want %d", ts, last+51)
	}
	o.Observe(3) // lower than last: no effect
	if o.Last() != last+51 {
		t.Fatal("Observe lowered the floor")
	}
}

func TestKeyStateInsertKeepsOrder(t *testing.T) {
	ks := &KeyState{}
	for _, cts := range []uint64{10, 30, 20, 40, 25} {
		ks.Insert(Version{CommitTS: cts, StartTS: cts - 1, Loc: cts})
	}
	want := []uint64{40, 30, 25, 20, 10}
	for i, v := range ks.Versions {
		if v.CommitTS != want[i] {
			t.Fatalf("Versions[%d].CommitTS = %d, want %d", i, v.CommitTS, want[i])
		}
	}
	if v, ok := ks.VisibleAt(27); !ok || v.CommitTS != 25 {
		t.Fatalf("VisibleAt(27) = %+v, %v", v, ok)
	}
	if _, ok := ks.VisibleAt(5); ok {
		t.Fatal("VisibleAt(5) found a version")
	}
	if v, ok := ks.VersionAt(19); !ok || v.CommitTS != 20 {
		t.Fatalf("VersionAt(19) = %+v, %v", v, ok)
	}
	if _, ok := ks.VersionAt(999); ok {
		t.Fatal("VersionAt found a phantom")
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable()
	if tb.Get([]byte("a")) != nil {
		t.Fatal("empty table returned state")
	}
	ks := tb.Ensure([]byte("a"))
	if ks == nil || tb.Ensure([]byte("a")) != ks {
		t.Fatal("Ensure not idempotent")
	}
	tb.Ensure([]byte("c"))
	tb.Ensure([]byte("b"))
	keys := tb.Keys(nil)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
	tb.Delete([]byte("b"))
	if tb.Len() != 2 || tb.Get([]byte("b")) != nil {
		t.Fatal("Delete failed")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	a := NewBackoff(42, 2*env.Microsecond, 64*env.Microsecond)
	b := NewBackoff(42, 2*env.Microsecond, 64*env.Microsecond)
	other := NewBackoff(43, 2*env.Microsecond, 64*env.Microsecond)
	same, diff := true, false
	for i := 0; i < 20; i++ {
		da, db, dc := a.Next(), b.Next(), other.Next()
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
		if da <= 0 || da > 64*env.Microsecond {
			t.Fatalf("step %d: delay %d out of (0, cap]", i, da)
		}
	}
	if !same {
		t.Fatal("same seed produced different sleep streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical sleep streams")
	}
	if a.Attempts() != 20 {
		t.Fatalf("Attempts = %d", a.Attempts())
	}
	a.Reset()
	if a.Attempts() != 0 {
		t.Fatal("Reset did not clear attempts")
	}
	if d := a.Next(); d > 2*env.Microsecond {
		t.Fatalf("post-Reset delay %d did not restart the ramp", d)
	}
}

func BenchmarkEnvelopeEncodeDecode(b *testing.B) {
	e := Envelope{Kind: KindCommitPut, StartTS: 77, CommitTS: 99, PrevLoc: NoLoc, Value: make([]byte, 256)}
	buf := AppendEncode(nil, &e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], &e)
		if _, ok := Decode(buf); !ok {
			b.Fatal("decode failed")
		}
	}
}
