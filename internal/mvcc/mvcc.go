// Package mvcc holds the building blocks of KVell's multi-version layer:
// a deterministic timestamp oracle driven by virtual time, the on-disk
// version envelope that wraps every slot value when versioning is enabled,
// and the per-worker in-memory version/lock tables that cover the
// uncheckpointed window (keys with more than one live version, or with a
// pending transaction intent). Single-version keys have no table entry, so
// the common-case read stays on the store's zero-allocation path.
//
// The package is pure data structures and codecs: all I/O, routing and
// protocol live in internal/core (worker-side state machines) and
// internal/txn (the percolator-style client). Nothing here reads the wall
// clock or unseeded randomness — timestamps come from the simulator's
// virtual clock and all tie-breaking is by monotone counters, which is what
// keeps transactional schedules bit-deterministic.
package mvcc

import (
	"encoding/binary"
	"sort"

	"kvell/internal/env"
)

// NoLoc marks "no previous version" in an envelope's chain pointer. Location
// 0 is a valid slot (class 0, slot 0), so the sentinel is all-ones.
const NoLoc = ^uint64(0)

// Oracle issues strictly increasing commit/start timestamps. Timestamps
// embed the virtual time of issue in their high bits (so they are meaningful
// across restarts and machines) with a low-bits counter disambiguating
// same-instant fetches. An Oracle is owned by one event domain (the store on
// a single node, machine 0 in a cluster); cross-machine users reach it
// through the network layer, never by sharing the struct.
type Oracle struct {
	last uint64
}

// tsShift leaves 2^20 timestamps per virtual nanosecond before the clock
// component saturates ordering; virtual times are int64 nanoseconds, so the
// shifted value fits uint64 for any simulated run.
const tsShift = 20

// Next returns a fresh timestamp, strictly greater than every timestamp
// returned or observed before.
func (o *Oracle) Next(now env.Time) uint64 {
	t := uint64(now) << tsShift
	if t <= o.last {
		t = o.last + 1
	}
	o.last = t
	return t
}

// Observe raises the oracle floor to at least ts (recovery feeds it the
// largest timestamp found on disk so post-crash commits sort after every
// pre-crash one).
func (o *Oracle) Observe(ts uint64) {
	if ts > o.last {
		o.last = ts
	}
}

// Last returns the most recent timestamp issued or observed. Readers that
// want "latest" semantics without consuming a timestamp snapshot at Last():
// any commit still in flight will fetch a strictly larger timestamp, so it
// is never required reading for such a snapshot.
func (o *Oracle) Last() uint64 { return o.last }

// Envelope kinds. An intent is a prewritten, uncommitted value locked by
// transaction StartTS; committed records carry their CommitTS. Deletes are
// materialized (a committed delete stays live on disk until garbage
// collection so that snapshot readers older than it still find the previous
// version through the chain).
const (
	KindIntentPut    = 0x11
	KindIntentDelete = 0x12
	KindCommitPut    = 0x21
	KindCommitDelete = 0x22
)

// HeaderSize is the fixed envelope prefix: kind(1) + startTS(8) +
// commitTS(8) + prevLoc(8) + primaryLen(2).
const HeaderSize = 1 + 8 + 8 + 8 + 2

// Envelope is the version wrapper stored as a slot's value when MVCC is
// enabled. Decode returns views into the encoded buffer; callers that retain
// Primary or Value must copy.
type Envelope struct {
	Kind     byte
	StartTS  uint64 // issuing transaction's snapshot timestamp
	CommitTS uint64 // 0 while an intent
	PrevLoc  uint64 // previous version's slot location, NoLoc for none
	Primary  []byte // primary lock key (intents; retained after commit)
	Value    []byte // user value
}

// Committed reports whether the envelope is a committed record.
func (e *Envelope) Committed() bool {
	return e.Kind == KindCommitPut || e.Kind == KindCommitDelete
}

// Intent reports whether the envelope is a prewrite intent.
func (e *Envelope) Intent() bool {
	return e.Kind == KindIntentPut || e.Kind == KindIntentDelete
}

// Delete reports whether the envelope materializes a delete.
func (e *Envelope) Delete() bool {
	return e.Kind == KindIntentDelete || e.Kind == KindCommitDelete
}

// EncodedSize returns the encoded length of an envelope with the given
// primary-key and value lengths.
func EncodedSize(plen, vlen int) int { return HeaderSize + plen + vlen }

// AppendEncode appends e's encoding to dst and returns the extended slice
// (the usual append contract; pass a recycled buffer to avoid allocation).
func AppendEncode(dst []byte, e *Envelope) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = e.Kind
	binary.LittleEndian.PutUint64(hdr[1:9], e.StartTS)
	binary.LittleEndian.PutUint64(hdr[9:17], e.CommitTS)
	binary.LittleEndian.PutUint64(hdr[17:25], e.PrevLoc)
	binary.LittleEndian.PutUint16(hdr[25:27], uint16(len(e.Primary)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, e.Primary...)
	dst = append(dst, e.Value...)
	return dst
}

// Decode parses b as an envelope, returning views into b. ok is false when b
// is too short or the kind byte is unknown (corrupt or non-MVCC data).
func Decode(b []byte) (e Envelope, ok bool) {
	if len(b) < HeaderSize {
		return Envelope{}, false
	}
	switch b[0] {
	case KindIntentPut, KindIntentDelete, KindCommitPut, KindCommitDelete:
	default:
		return Envelope{}, false
	}
	e.Kind = b[0]
	e.StartTS = binary.LittleEndian.Uint64(b[1:9])
	e.CommitTS = binary.LittleEndian.Uint64(b[9:17])
	e.PrevLoc = binary.LittleEndian.Uint64(b[17:25])
	plen := int(binary.LittleEndian.Uint16(b[25:27]))
	if HeaderSize+plen > len(b) {
		return Envelope{}, false
	}
	e.Primary = b[HeaderSize : HeaderSize+plen : HeaderSize+plen]
	e.Value = b[HeaderSize+plen:]
	return e, true
}

// Version is one committed version of a key: where it lives and when it
// became visible. Versions in a KeyState are ordered newest-first.
type Version struct {
	CommitTS uint64
	StartTS  uint64
	Loc      uint64
	Del      bool
}

// Lock is a pending prewrite intent on a key. MaxReadTS records the largest
// snapshot timestamp that read past this lock while it was pending (on the
// primary key only); the commit protocol must take a commit timestamp above
// it, or those readers would have missed a commit inside their snapshot.
type Lock struct {
	StartTS   uint64
	Primary   []byte // owned copy
	IntentLoc uint64
	Del       bool
	MaxReadTS uint64
	// CommitTS is nonzero once the commit point has been decided and the
	// in-place flip write is in flight; visibility of the new version still
	// waits for the flip's durability. While set, the lock admits no further
	// MaxReadTS bumps and no rollback.
	CommitTS uint64
}

// KeyState is the in-memory versioning state of one key: an optional
// pending lock plus the committed versions still retained, newest first.
// Keys without a KeyState have exactly one committed version — the one the
// index points at — visible to every snapshot the store can still serve.
type KeyState struct {
	Lock     *Lock
	Versions []Version
}

// VisibleAt returns the newest version with CommitTS <= ts.
func (ks *KeyState) VisibleAt(ts uint64) (Version, bool) {
	for _, v := range ks.Versions {
		if v.CommitTS <= ts {
			return v, true
		}
	}
	return Version{}, false
}

// VersionAt returns the version committed by the transaction with the given
// start timestamp, if retained.
func (ks *KeyState) VersionAt(startTS uint64) (Version, bool) {
	for _, v := range ks.Versions {
		if v.StartTS == startTS {
			return v, true
		}
	}
	return Version{}, false
}

// Prepend inserts v as the newest version.
func (ks *KeyState) Prepend(v Version) {
	ks.Versions = append(ks.Versions, Version{})
	copy(ks.Versions[1:], ks.Versions)
	ks.Versions[0] = v
}

// Insert adds v keeping Versions ordered newest-first. Commit timestamps can
// land slightly out of order on one key (an autocommit can slip between a
// transaction's timestamp fetch and its flip), so publication sorts rather
// than assuming the newcomer is newest.
func (ks *KeyState) Insert(v Version) {
	i := 0
	for i < len(ks.Versions) && ks.Versions[i].CommitTS > v.CommitTS {
		i++
	}
	ks.Versions = append(ks.Versions, Version{})
	copy(ks.Versions[i+1:], ks.Versions[i:])
	ks.Versions[i] = v
}

// Table is one worker's key -> KeyState map. Get compiles to an
// allocation-free map probe, which is what keeps single-version reads (a
// miss here) on the store's zero-allocation path.
type Table struct {
	m map[string]*KeyState
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{m: make(map[string]*KeyState)} }

// Get returns the state for key, or nil.
func (t *Table) Get(key []byte) *KeyState { return t.m[string(key)] }

// Ensure returns the state for key, creating it if absent.
func (t *Table) Ensure(key []byte) *KeyState {
	if ks := t.m[string(key)]; ks != nil {
		return ks
	}
	ks := &KeyState{}
	t.m[string(key)] = ks
	return ks
}

// Delete removes key's state.
func (t *Table) Delete(key []byte) { delete(t.m, string(key)) }

// Len returns the number of tracked keys.
func (t *Table) Len() int { return len(t.m) }

// Keys appends all tracked keys to dst and returns it sorted (map order must
// never leak into the schedule).
func (t *Table) Keys(dst []string) []string {
	for k := range t.m {
		dst = append(dst, k)
	}
	sort.Strings(dst)
	return dst
}

// Backoff is a bounded, seeded exponential backoff for write-write conflict
// retries. The jitter stream is a xorshift64 generator seeded by the caller,
// so two runs with the same seed sleep identically.
type Backoff struct {
	state uint64
	base  env.Time
	cap   env.Time
	n     int
}

// NewBackoff returns a backoff starting at base and capped at cap.
func NewBackoff(seed int64, base, cap env.Time) *Backoff {
	if base <= 0 {
		base = 5 * env.Microsecond
	}
	if cap < base {
		cap = 64 * base
	}
	return &Backoff{state: uint64(seed)*0x9E3779B97F4A7C15 + 1, base: base, cap: cap}
}

// Next returns the next sleep duration: base·2^attempt, capped, with
// deterministic jitter in [½d, d).
func (b *Backoff) Next() env.Time {
	d := b.base << uint(b.n)
	if d > b.cap || d <= 0 {
		d = b.cap
	}
	b.n++
	b.state ^= b.state << 13
	b.state ^= b.state >> 7
	b.state ^= b.state << 17
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + env.Time(b.state%uint64(half))
}

// Attempts returns how many times Next has been called since the last Reset.
func (b *Backoff) Attempts() int { return b.n }

// Reset restarts the exponential ramp (the jitter stream continues).
func (b *Backoff) Reset() { b.n = 0 }
