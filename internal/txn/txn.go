// Package txn is the percolator-style transaction client over KVell's MVCC
// layer. A transaction buffers its writes locally, reads at its start
// timestamp (seeing its own buffered writes), and commits with a two-phase
// primary-lock protocol: every write is prewritten as a locked intent
// (primary key first), then the primary intent is flipped to committed at a
// fresh commit timestamp — that durable flip is the transaction's atomic
// commit point — and the secondaries roll forward afterwards. Locks left by
// concurrent or dead transactions are resolved lazily through their primary,
// never waited on.
//
// The package is deliberately mechanism-only: all policy knobs (retry
// budgets, backoff spans) are plain fields, every retry sleep comes from a
// seeded bounded backoff, and no code path reads the wall clock, so
// transactional schedules in the simulator stay bit-deterministic.
package txn

import (
	"errors"

	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/mvcc"
)

// Client is the transport a transaction speaks to the store through: the
// store's own API on a single node, a network stub in a cluster. All methods
// block the calling proc until the store responds.
type Client interface {
	// NextTS fetches a fresh timestamp from the oracle.
	NextTS(c env.Ctx) uint64
	// TxnGet performs a snapshot read of key at ts. skip, when nonzero, names
	// a pending transaction (by start timestamp) whose lock the read may pass
	// — the reader already registered its snapshot with that transaction's
	// primary.
	TxnGet(c env.Ctx, key []byte, ts, skip uint64) kv.Result
	// Prewrite installs a locked intent for the transaction started at
	// startTS. value is ignored when del is set.
	Prewrite(c env.Ctx, key, value, primary []byte, startTS uint64, del bool) kv.Result
	// Commit flips the intent at startTS on key to a committed version at
	// commitTS.
	Commit(c env.Ctx, key []byte, startTS, commitTS uint64) kv.Result
	// Resolve queries the state of the transaction whose primary lock sits on
	// primary, recording readTS as a passed-reader watermark while pending.
	Resolve(c env.Ctx, primary []byte, startTS, readTS uint64) kv.Result
	// Rollback removes the intent at startTS on key.
	Rollback(c env.Ctx, key []byte, startTS uint64) kv.Result
}

// ErrConflict reports a write-write conflict: another transaction committed
// to one of this transaction's keys after its snapshot, or holds a pending
// lock on one. The transaction has been rolled back; the caller may retry
// from a fresh snapshot (Manager.Run does so with bounded backoff).
var ErrConflict = errors.New("txn: write-write conflict")

// ErrAborted reports that the transaction's primary lock disappeared before
// commit — another party rolled it back (crash settlement racing the client).
var ErrAborted = errors.New("txn: aborted by lock cleanup")

// ErrTooManyResolves reports that a read or prewrite could not settle a
// blocking lock within the retry budget.
var ErrTooManyResolves = errors.New("txn: lock resolution budget exhausted")

// write is one buffered mutation.
type write struct {
	key   []byte
	value []byte
	del   bool
}

// Txn is a single transaction: a snapshot timestamp plus a client-side write
// buffer. It is not safe for concurrent use; one proc owns it.
type Txn struct {
	cl      Client
	startTS uint64
	writes  []write        // commit order; writes[0] is the primary
	byKey   map[string]int // key -> index in writes
	bo      *mvcc.Backoff
	done    bool
}

// Begin opens a transaction at a fresh snapshot. seed salts the retry
// backoff's jitter stream (pass a workload-derived value; two runs with equal
// seeds and schedules sleep identically).
func Begin(c env.Ctx, cl Client, seed int64) *Txn {
	ts := cl.NextTS(c)
	return &Txn{
		cl:      cl,
		startTS: ts,
		byKey:   make(map[string]int),
		bo:      mvcc.NewBackoff(seed^int64(ts), 2*env.Microsecond, 256*env.Microsecond),
	}
}

// StartTS returns the transaction's snapshot timestamp.
func (t *Txn) StartTS() uint64 { return t.startTS }

// Put buffers a write of value to key. The value is not copied; the caller
// must not mutate it before Commit returns.
func (t *Txn) Put(key, value []byte) { t.buffer(key, value, false) }

// Delete buffers a delete of key.
func (t *Txn) Delete(key []byte) { t.buffer(key, nil, true) }

func (t *Txn) buffer(key, value []byte, del bool) {
	if i, ok := t.byKey[string(key)]; ok {
		t.writes[i].value = value
		t.writes[i].del = del
		return
	}
	t.byKey[string(key)] = len(t.writes)
	t.writes = append(t.writes, write{key: append([]byte(nil), key...), value: value, del: del})
}

// Get reads key at the transaction's snapshot, seeing the transaction's own
// buffered writes first.
func (t *Txn) Get(c env.Ctx, key []byte) ([]byte, bool, error) {
	if i, ok := t.byKey[string(key)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, false, nil
		}
		return w.value, true, nil
	}
	return snapshotGet(c, t.cl, key, t.startTS, t.bo)
}

// GetAt is a standalone snapshot read at ts through cl, with lazy lock
// resolution. seed salts the retry backoff.
func GetAt(c env.Ctx, cl Client, key []byte, ts uint64, seed int64) ([]byte, bool, error) {
	bo := mvcc.NewBackoff(seed^int64(kv.Hash64(key)^ts), 2*env.Microsecond, 256*env.Microsecond)
	return snapshotGet(c, cl, key, ts, bo)
}

// resolveBudget bounds how many lock resolutions one read or prewrite will
// attempt before giving up; it exists to convert protocol bugs into errors
// rather than infinite loops.
const resolveBudget = 64

// snapshotGet is the read loop: on TxnLocked, resolve through the primary —
// pending transactions record our snapshot and let us pass, committed ones
// roll forward, dead ones roll back — and retry; on TxnRetry (a commit flip
// in flight), back off and retry.
func snapshotGet(c env.Ctx, cl Client, key []byte, ts uint64, bo *mvcc.Backoff) ([]byte, bool, error) {
	var skip uint64
	for attempt := 0; attempt < resolveBudget; attempt++ {
		res := cl.TxnGet(c, key, ts, skip)
		switch res.Txn {
		case kv.TxnLocked:
			primary := append([]byte(nil), res.Value...)
			st := cl.Resolve(c, primary, res.TxnTS, ts)
			switch st.Txn {
			case kv.TxnPending:
				skip = res.TxnTS // registered with the primary; read past
			case kv.TxnCommitted:
				cl.Commit(c, key, res.TxnTS, st.TxnTS) // roll the secondary forward
				skip = 0
			case kv.TxnAborted:
				cl.Rollback(c, key, res.TxnTS) // lazy cleanup of a dead intent
				skip = 0
			default: // mid-flip
				c.Sleep(bo.Next())
				skip = 0
			}
		case kv.TxnRetry:
			c.Sleep(bo.Next())
		default:
			return res.Value, res.Found, nil
		}
	}
	return nil, false, ErrTooManyResolves
}

// Commit runs the two-phase protocol and returns the commit timestamp. On
// ErrConflict every intent this transaction managed to install has been
// rolled back. A transaction with no writes commits trivially at its own
// snapshot. After Commit (success or failure) the transaction is spent.
func (t *Txn) Commit(c env.Ctx) (uint64, error) {
	if t.done {
		panic("txn: Commit on a spent transaction")
	}
	t.done = true
	if len(t.writes) == 0 {
		return t.startTS, nil
	}
	primary := t.writes[0].key
	for i := range t.writes {
		if err := t.prewriteOne(c, &t.writes[i], primary); err != nil {
			t.rollbackPrewritten(c, i)
			return 0, err
		}
	}
	// Commit point: flip the primary at a fresh timestamp. TxnRetry means the
	// timestamp landed at or below a passed reader's snapshot — fetch a newer
	// one (the oracle's monotonicity guarantees eventual progress).
	var cts uint64
	for {
		try := t.cl.NextTS(c)
		res := t.cl.Commit(c, primary, t.startTS, try)
		if res.Txn == kv.TxnRetry {
			if res.TxnTS >= try {
				continue // watermark raced above us; refetch
			}
			c.Sleep(t.bo.Next()) // our own flip in flight (duplicate commit)
			continue
		}
		if res.Txn != kv.TxnOK {
			// The primary lock vanished without a version at our start
			// timestamp: crash settlement rolled us back.
			t.rollbackPrewritten(c, len(t.writes))
			return 0, ErrAborted
		}
		cts = res.TxnTS
		break
	}
	// The transaction is durably committed. Roll the secondaries forward;
	// stragglers are also settled lazily by any future reader.
	for i := 1; i < len(t.writes); i++ {
		t.cl.Commit(c, t.writes[i].key, t.startTS, cts)
	}
	return cts, nil
}

// prewriteOne installs one intent, lazily resolving any blocking lock.
func (t *Txn) prewriteOne(c env.Ctx, w *write, primary []byte) error {
	for attempt := 0; attempt < resolveBudget; attempt++ {
		res := t.cl.Prewrite(c, w.key, w.value, primary, t.startTS, w.del)
		switch res.Txn {
		case kv.TxnOK:
			return nil
		case kv.TxnWriteConflict:
			return ErrConflict
		case kv.TxnLocked:
			blocker := append([]byte(nil), res.Value...)
			st := t.cl.Resolve(c, blocker, res.TxnTS, 0)
			switch st.Txn {
			case kv.TxnCommitted:
				t.cl.Commit(c, w.key, res.TxnTS, st.TxnTS)
			case kv.TxnAborted:
				t.cl.Rollback(c, w.key, res.TxnTS)
			case kv.TxnPending:
				// A live transaction holds the key: first-to-lock wins, we
				// die (never wait — waiting is what deadlocks).
				return ErrConflict
			default: // mid-flip; its version is about to land
				c.Sleep(t.bo.Next())
			}
		default:
			c.Sleep(t.bo.Next())
		}
	}
	return ErrTooManyResolves
}

// rollbackPrewritten removes the first n intents (primary first, so the
// transaction is dead the moment the primary's rollback lands).
func (t *Txn) rollbackPrewritten(c env.Ctx, n int) {
	for i := 0; i < n && i < len(t.writes); i++ {
		t.cl.Rollback(c, t.writes[i].key, t.startTS)
	}
}

// Rollback abandons an uncommitted transaction. Nothing has touched the
// store yet (writes are buffered until Commit), so it only marks the
// transaction spent.
func (t *Txn) Rollback() { t.done = true }

// Manager runs transaction bodies with automatic conflict retries.
type Manager struct {
	Cl Client
	// MaxAttempts bounds the retry loop; 0 means DefaultMaxAttempts.
	MaxAttempts int
	// Conflicts counts write-write conflict retries across all Run calls.
	Conflicts int64
	// Aborts counts transactions that exhausted their retry budget.
	Aborts int64
}

// DefaultMaxAttempts is the retry budget when Manager.MaxAttempts is zero.
const DefaultMaxAttempts = 16

// Run executes fn inside a transaction, retrying with seeded backoff on
// write-write conflicts, and returns the commit timestamp. A non-conflict
// error from fn aborts the transaction and is returned as-is. seed salts the
// backoff jitter; pass a per-transaction workload value for determinism.
func (m *Manager) Run(c env.Ctx, seed int64, fn func(c env.Ctx, t *Txn) error) (uint64, error) {
	max := m.MaxAttempts
	if max <= 0 {
		max = DefaultMaxAttempts
	}
	bo := mvcc.NewBackoff(seed, 4*env.Microsecond, 512*env.Microsecond)
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		t := Begin(c, m.Cl, seed)
		if err := fn(c, t); err != nil {
			t.Rollback()
			return 0, err
		}
		cts, err := t.Commit(c)
		if err == nil {
			return cts, nil
		}
		lastErr = err
		if !errors.Is(err, ErrConflict) {
			return 0, err
		}
		m.Conflicts++
		c.Sleep(bo.Next())
	}
	m.Aborts++
	return 0, lastErr
}
