package txn

import (
	"kvell/internal/core"
	"kvell/internal/env"
	"kvell/internal/kv"
)

// LocalClient speaks the transaction protocol directly to a single-node
// store (whose oracle is store-local).
type LocalClient struct {
	St *core.Store
}

var _ Client = (*LocalClient)(nil)

func (l *LocalClient) NextTS(c env.Ctx) uint64 { return l.St.NextTS(c) }

func (l *LocalClient) TxnGet(c env.Ctx, key []byte, ts, skip uint64) kv.Result {
	return l.St.Do(c, &kv.Request{Op: kv.OpTxnGet, Key: key, TS: ts, TS2: skip})
}

func (l *LocalClient) Prewrite(c env.Ctx, key, value, primary []byte, startTS uint64, del bool) kv.Result {
	return l.St.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: key, Value: value, TS: startTS, Aux: primary, Del: del})
}

func (l *LocalClient) Commit(c env.Ctx, key []byte, startTS, commitTS uint64) kv.Result {
	return l.St.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: key, TS: startTS, TS2: commitTS})
}

func (l *LocalClient) Resolve(c env.Ctx, primary []byte, startTS, readTS uint64) kv.Result {
	return l.St.Do(c, &kv.Request{Op: kv.OpTxnResolve, Key: primary, TS: startTS, TS2: readTS})
}

func (l *LocalClient) Rollback(c env.Ctx, key []byte, startTS uint64) kv.Result {
	return l.St.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: key, TS: startTS})
}
