package txn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

// harness runs fn against a fresh MVCC store inside the simulator.
func harness(t *testing.T, seed int64, fn func(c env.Ctx, st *core.Store, cl *LocalClient)) {
	t.Helper()
	s := sim.New(seed)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), device.NewMemStore())
	cfg := core.DefaultConfig(disk)
	cfg.MVCC = true
	st, err := core.Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	e.Go("client", func(c env.Ctx) {
		fn(c, st, &LocalClient{St: st})
		st.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := st.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
}

func bal(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestTxnReadYourWrites(t *testing.T) {
	harness(t, 1, func(c env.Ctx, st *core.Store, cl *LocalClient) {
		tx := Begin(c, cl, 7)
		k := kv.Key(1)
		if _, ok, err := tx.Get(c, k); err != nil || ok {
			t.Fatalf("read of absent key: ok=%v err=%v", ok, err)
		}
		tx.Put(k, []byte("own"))
		if v, ok, _ := tx.Get(c, k); !ok || !bytes.Equal(v, []byte("own")) {
			t.Fatal("own write not visible")
		}
		tx.Delete(k)
		if _, ok, _ := tx.Get(c, k); ok {
			t.Fatal("own delete not visible")
		}
		tx.Put(k, []byte("final"))
		cts, err := tx.Commit(c)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok, _ := GetAt(c, cl, k, cts, 1); !ok || !bytes.Equal(v, []byte("final")) {
			t.Fatal("committed value not visible at its own timestamp")
		}
	})
}

func TestTxnMultiKeyAtomicity(t *testing.T) {
	harness(t, 2, func(c env.Ctx, st *core.Store, cl *LocalClient) {
		a, b := kv.Key(1), kv.Key(2)
		tx := Begin(c, cl, 3)
		tx.Put(a, bal(100))
		tx.Put(b, bal(100))
		if _, err := tx.Commit(c); err != nil {
			t.Fatal(err)
		}
		pre := st.SnapshotTS()
		// Transfer 30 from a to b.
		m := &Manager{Cl: cl}
		cts, err := m.Run(c, 11, func(c env.Ctx, tx *Txn) error {
			av, _, err := tx.Get(c, a)
			if err != nil {
				return err
			}
			bv, _, err := tx.Get(c, b)
			if err != nil {
				return err
			}
			tx.Put(a, bal(binary.LittleEndian.Uint64(av)-30))
			tx.Put(b, bal(binary.LittleEndian.Uint64(bv)+30))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// The old snapshot sees the pre-transfer state on both keys; a new
		// one sees the post-transfer state on both. No mix exists at any ts.
		for _, ts := range []uint64{pre, cts, st.SnapshotTS()} {
			av, _, _ := GetAt(c, cl, a, ts, 5)
			bv, _, _ := GetAt(c, cl, b, ts, 5)
			sum := binary.LittleEndian.Uint64(av) + binary.LittleEndian.Uint64(bv)
			if sum != 200 {
				t.Fatalf("ts %d: sum %d, want 200", ts, sum)
			}
			if ts >= cts && binary.LittleEndian.Uint64(av) != 70 {
				t.Fatalf("ts %d: a=%d, want 70", ts, binary.LittleEndian.Uint64(av))
			}
			if ts < cts && binary.LittleEndian.Uint64(av) != 100 {
				t.Fatalf("ts %d: a=%d, want 100", ts, binary.LittleEndian.Uint64(av))
			}
		}
	})
}

func TestTxnWriteConflictLoserRetries(t *testing.T) {
	harness(t, 3, func(c env.Ctx, st *core.Store, cl *LocalClient) {
		k := kv.Key(9)
		tx := Begin(c, cl, 1)
		tx.Put(k, bal(0))
		if _, err := tx.Commit(c); err != nil {
			t.Fatal(err)
		}
		// Two overlapping increments: the second's snapshot predates the
		// first's commit, so its bare Commit must fail with ErrConflict...
		t1 := Begin(c, cl, 2)
		t2 := Begin(c, cl, 3)
		v1, _, _ := t1.Get(c, k)
		v2, _, _ := t2.Get(c, k)
		t1.Put(k, bal(binary.LittleEndian.Uint64(v1)+1))
		t2.Put(k, bal(binary.LittleEndian.Uint64(v2)+1))
		if _, err := t1.Commit(c); err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Commit(c); !errors.Is(err, ErrConflict) {
			t.Fatalf("stale commit: %v, want ErrConflict", err)
		}
		// ...while the manager retries it to success.
		m := &Manager{Cl: cl}
		if _, err := m.Run(c, 4, func(c env.Ctx, tx *Txn) error {
			v, _, err := tx.Get(c, k)
			if err != nil {
				return err
			}
			tx.Put(k, bal(binary.LittleEndian.Uint64(v)+1))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		v, _, _ := GetAt(c, cl, k, st.SnapshotTS(), 5)
		if got := binary.LittleEndian.Uint64(v); got != 2 {
			t.Fatalf("final value %d, want 2 (one lost update)", got)
		}
	})
}

func TestTxnPendingLockMakesWriterDie(t *testing.T) {
	harness(t, 4, func(c env.Ctx, st *core.Store, cl *LocalClient) {
		k := kv.Key(5)
		// A transaction parks a prewrite on k and stalls before commit.
		holder := Begin(c, cl, 1)
		if res := cl.Prewrite(c, k, []byte("held"), k, holder.StartTS(), false); res.Txn != kv.TxnOK {
			t.Fatalf("holder prewrite: %d", res.Txn)
		}
		// A second writer must die (never wait) on the live lock.
		tx := Begin(c, cl, 2)
		tx.Put(k, []byte("blocked"))
		if _, err := tx.Commit(c); !errors.Is(err, ErrConflict) {
			t.Fatalf("write against live lock: %v, want ErrConflict", err)
		}
		if st.PendingLocks() != 1 {
			t.Fatal("loser's rollback disturbed the holder's lock")
		}
		// The holder commits fine afterwards.
		for {
			cts := cl.NextTS(c)
			res := cl.Commit(c, k, holder.StartTS(), cts)
			if res.Txn == kv.TxnRetry {
				continue
			}
			if res.Txn != kv.TxnOK {
				t.Fatalf("holder commit: %d", res.Txn)
			}
			break
		}
		if v, ok, _ := GetAt(c, cl, k, st.SnapshotTS(), 3); !ok || !bytes.Equal(v, []byte("held")) {
			t.Fatal("holder's value lost")
		}
	})
}

func TestTxnConcurrentTransfersConserveTotal(t *testing.T) {
	// Many procs transfer between a small set of accounts while a reader
	// audits the invariant at live snapshots. The close-loop shape of the
	// sim guarantees the test is deterministic end to end.
	const accounts = 8
	const procs = 4
	const transfersPerProc = 25
	s := sim.New(5)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), device.NewMemStore())
	cfg := core.DefaultConfig(disk)
	cfg.MVCC = true
	st, err := core.Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	cl := &LocalClient{St: st}
	mu := e.NewMutex()
	cond := e.NewCond(mu)
	finished := 0
	e.Go("seed", func(c env.Ctx) {
		tx := Begin(c, cl, 0)
		for i := 0; i < accounts; i++ {
			tx.Put(kv.Key(int64(i)), bal(1000))
		}
		if _, err := tx.Commit(c); err != nil {
			t.Errorf("seed: %v", err)
		}
		for p := 0; p < procs; p++ {
			p := p
			e.Go("mover", func(c env.Ctx) {
				m := &Manager{Cl: cl, MaxAttempts: 64}
				for i := 0; i < transfersPerProc; i++ {
					from := kv.Key(int64((p + i) % accounts))
					to := kv.Key(int64((p*3 + i*7 + 1) % accounts))
					if bytes.Equal(from, to) {
						continue
					}
					_, err := m.Run(c, int64(p*1000+i), func(c env.Ctx, tx *Txn) error {
						fv, _, err := tx.Get(c, from)
						if err != nil {
							return err
						}
						tv, _, err := tx.Get(c, to)
						if err != nil {
							return err
						}
						amt := uint64(1 + i%5)
						f := binary.LittleEndian.Uint64(fv)
						if f < amt {
							return nil // insufficient funds; commit as read-only
						}
						tx.Put(from, bal(f-amt))
						tx.Put(to, bal(binary.LittleEndian.Uint64(tv)+amt))
						return nil
					})
					if err != nil {
						t.Errorf("mover %d transfer %d: %v", p, i, err)
						break
					}
					// Audit: one consistent snapshot across all accounts.
					if i%5 == 0 {
						ts := st.SnapshotTS()
						var sum uint64
						for a := 0; a < accounts; a++ {
							v, ok, err := GetAt(c, cl, kv.Key(int64(a)), ts, int64(a))
							if err != nil || !ok {
								t.Errorf("audit read %d: ok=%v err=%v", a, ok, err)
								return
							}
							sum += binary.LittleEndian.Uint64(v)
						}
						if sum != accounts*1000 {
							t.Errorf("mover %d step %d: snapshot sum %d, want %d", p, i, sum, accounts*1000)
							return
						}
					}
				}
				mu.Lock(c)
				finished++
				mu.Unlock(c)
				cond.Signal(c)
			})
		}
		e.Go("closer", func(c env.Ctx) {
			mu.Lock(c)
			for finished < procs {
				cond.Wait(c)
			}
			mu.Unlock(c)
			st.Stop(c)
		})
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if st.PendingLocks() != 0 {
		t.Fatal("locks left behind")
	}
	if err := st.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTxnCommit(b *testing.B) {
	e := env.NewReal()
	ms := device.NewMemStore()
	disk := device.NewRealDisk(ms, 2, false)
	cfg := core.DefaultConfig(disk)
	cfg.MVCC = true
	st, err := core.Open(e, cfg)
	if err != nil {
		b.Fatal(err)
	}
	st.Start()
	cl := &LocalClient{St: st}
	doneCh := make(chan struct{})
	e.Go("bench", func(c env.Ctx) {
		defer close(doneCh)
		seed := Begin(c, cl, 0)
		for i := int64(0); i < 64; i++ {
			seed.Put(kv.Key(i), kv.Value(i, 0, 128))
		}
		if _, err := seed.Commit(c); err != nil {
			b.Error(err)
			return
		}
		val := make([]byte, 128)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Disjoint two-key transactions: the steady-state commit cost
			// (2 prewrites + primary flip + secondary roll-forward).
			k1 := kv.Key(int64(i % 64))
			k2 := kv.Key(int64((i + 32) % 64))
			tx := Begin(c, cl, int64(i))
			kv.FillValue(val, int64(i%64), uint64(i))
			tx.Put(k1, val)
			tx.Put(k2, val)
			if _, err := tx.Commit(c); err != nil {
				b.Error(err)
				return
			}
		}
		b.StopTimer()
		st.Stop(c)
	})
	<-doneCh
	e.Wait()
	disk.Close()
}
