package kvell

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func TestMemoryStoreBasics(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("hello"))
	if err != nil || !ok || string(v) != "world" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("nope")); ok {
		t.Fatal("found missing key")
	}
	existed, err := db.Delete([]byte("hello"))
	if err != nil || !existed {
		t.Fatal("delete failed")
	}
	if st := db.Stats(); st.Items != 0 {
		t.Fatalf("items = %d", st.Items)
	}
}

func TestScanAPI(t *testing.T) {
	db, err := Open(Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if err := db.Put([]byte(k), []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	items, err := db.Scan([]byte("key-050"), 10)
	if err != nil || len(items) != 10 {
		t.Fatalf("scan: %d items, %v", len(items), err)
	}
	for j, it := range items {
		want := fmt.Sprintf("key-%03d", 50+j)
		if string(it.Key) != want {
			t.Fatalf("scan[%d] = %q, want %q", j, it.Key, want)
		}
	}
	items, err = db.ScanRange([]byte("key-010"), []byte("key-013"))
	if err != nil || len(items) != 3 {
		t.Fatalf("range scan: %d items", len(items))
	}
}

func TestFileStorePersistsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.kvell")
	db, err := Open(Options{Path: path, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{byte(i)}, 300)); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete([]byte("k0007"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, _ := db2.Get([]byte(k))
		if i == 7 {
			if ok {
				t.Fatal("deleted key recovered")
			}
			continue
		}
		if !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 300)) {
			t.Fatalf("key %s lost across reopen (ok=%v)", k, ok)
		}
	}
	if st := db2.Stats(); st.Items != 199 {
		t.Fatalf("items after recovery = %d", st.Items)
	}
}

func TestConcurrentClients(t *testing.T) {
	db, err := Open(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("g%d-k%04d", g, i))
				if err := db.Put(k, k); err != nil {
					errs <- err
					return
				}
				v, ok, err := db.Get(k)
				if err != nil || !ok || !bytes.Equal(v, k) {
					errs <- fmt.Errorf("goroutine %d: readback failed at %d", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Items != 1600 {
		t.Fatalf("items = %d", st.Items)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put on closed = %v", err)
	}
	if _, _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get on closed = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestLargeValuesRoundTrip(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, n := range []int{10, 1000, 5000, 20000} {
		v := bytes.Repeat([]byte{0x5A}, n)
		k := []byte(fmt.Sprintf("size-%d", n))
		if err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
		got, ok, _ := db.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("size %d roundtrip failed", n)
		}
	}
}
