// Recovery example: simulate a crash by abandoning a store without closing
// it, then reopen and watch KVell rebuild its in-memory indexes by scanning
// the slabs (§5.6 of the paper — there is no commit log to replay).
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"kvell"
)

func main() {
	dir, err := os.MkdirTemp("", "kvell-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "crash.kvell")

	// Phase 1: write data, delete some, resize some, then "crash":
	// abandon the DB object without Close, losing all in-memory state
	// (indexes, caches, free lists) exactly as a crash would.
	db, err := kvell.Open(kvell.Options{Path: path, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("item-%06d", i)
		if err := db.Put([]byte(key), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < n; i += 10 {
		db.Delete([]byte(fmt.Sprintf("item-%06d", i)))
	}
	// Size-class migrations: items move slabs, leaving tombstones behind.
	for i := 1; i < 100; i += 2 {
		big := make([]byte, 3000)
		db.Put([]byte(fmt.Sprintf("item-%06d", i)), big)
	}
	fmt.Printf("wrote %d items (minus %d deletes), then CRASH (no clean shutdown)\n", n, n/10)
	// NOTE: deliberately no db.Close() — the process state is dropped.
	_ = db

	// Phase 2: reopen. Open() runs the recovery scan: every slab extent is
	// read sequentially, live items with the newest timestamp win, and
	// tombstones rebuild the free lists.
	t0 := time.Now()
	db2, err := kvell.Open(kvell.Options{Path: path, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("recovery scan took %v\n", time.Since(t0).Round(time.Millisecond))

	st := db2.Stats()
	fmt.Printf("recovered %d live items, index %dKB\n", st.Items, st.IndexBytes/1024)

	// Verify a few invariants.
	if _, ok, _ := db2.Get([]byte("item-000010")); ok {
		log.Fatal("deleted item resurrected")
	}
	if v, ok, _ := db2.Get([]byte("item-000003")); !ok || len(v) != 3000 {
		log.Fatalf("migrated item wrong after recovery: ok=%v len=%d", ok, len(v))
	}
	if v, ok, _ := db2.Get([]byte("item-000004")); !ok || string(v) != "v1-4" {
		log.Fatal("plain item wrong after recovery")
	}
	fmt.Println("all post-recovery checks passed")
}
