// YCSB example: drive a real (file-backed) KVell store with the YCSB
// workload generator and report throughput and latency percentiles.
//
//	go run ./examples/ycsb -workload A -records 20000 -ops 50000 -clients 8
//
// This exercises the real runtime; the paper's simulated-hardware numbers
// come from cmd/kvell-bench instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kvell"
	"kvell/internal/kv"
	"kvell/internal/ycsb"
)

func main() {
	var (
		workload = flag.String("workload", "A", "YCSB core workload (A-F)")
		records  = flag.Int64("records", 20_000, "initial records")
		ops      = flag.Int64("ops", 50_000, "operations to run")
		clients  = flag.Int("clients", 8, "client goroutines")
		itemSize = flag.Int("item", 1024, "record size in bytes")
		dir      = flag.String("dir", "", "data directory (default: temp)")
	)
	flag.Parse()

	d := *dir
	if d == "" {
		var err error
		d, err = os.MkdirTemp("", "kvell-ycsb")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
	}
	db, err := kvell.Open(kvell.Options{Path: filepath.Join(d, "ycsb.kvell"), Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := ycsb.NewGenerator(ycsb.Core((*workload)[0]), ycsb.Zipfian, *records, *itemSize, 42)
	fmt.Printf("loading %d records of %dB...\n", *records, *itemSize)
	for _, it := range gen.InitialItems() {
		if err := db.Put(it.Key, it.Value); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("running %d x YCSB-%s operations on %d clients...\n", *ops, *workload, *clients)
	var mu sync.Mutex
	var lats []time.Duration
	reqs := make(chan *kv.Request, 1024)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range reqs {
				t0 := time.Now()
				switch r.Op {
				case kv.OpGet:
					db.Get(r.Key)
				case kv.OpUpdate:
					db.Put(r.Key, r.Value)
				case kv.OpRMW:
					db.Get(r.Key)
					db.Put(r.Key, r.Value)
				case kv.OpScan:
					db.Scan(r.Key, r.ScanCount)
				}
				lat := time.Since(t0)
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for i := int64(0); i < *ops; i++ {
		reqs <- gen.Next()
	}
	close(reqs)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	fmt.Printf("throughput: %.0f ops/s\n", float64(*ops)/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p99=%v max=%v\n", pct(0.50), pct(0.99), lats[len(lats)-1])
	st := db.Stats()
	fmt.Printf("cache: %d hits / %d misses; disk: %d reads / %d writes\n",
		st.CacheHits, st.CacheMisses, st.Reads, st.Writes)
}
