// Quickstart: open a KVell store on a real file, write, read, scan and
// recover. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kvell"
)

func main() {
	dir, err := os.MkdirTemp("", "kvell-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "data.kvell")

	db, err := kvell.Open(kvell.Options{Path: path, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Writes are acknowledged once the item is at its final location on
	// disk — KVell has no commit log to replay (§4.4 of the paper).
	users := []struct{ id, name string }{
		{"user42", "Ada Lovelace"},
		{"user17", "Grace Hopper"},
		{"user99", "Barbara Liskov"},
		{"user03", "Frances Allen"},
	}
	for _, u := range users {
		if err := db.Put([]byte(u.id), []byte(u.name)); err != nil {
			log.Fatal(err)
		}
	}

	if v, ok, _ := db.Get([]byte("user42")); ok {
		fmt.Printf("user42 -> %s\n", v)
	}

	// Items are unsorted on disk, but each worker keeps a sorted
	// in-memory index, so range scans work (§4.2).
	items, _ := db.Scan([]byte("user00"), 10)
	fmt.Println("scan from user00:")
	for _, it := range items {
		fmt.Printf("  %s -> %s\n", it.Key, it.Value)
	}

	db.Delete([]byte("user17"))
	st := db.Stats()
	fmt.Printf("stats: %d items, index %dB, cache hits/misses %d/%d\n",
		st.Items, st.IndexBytes, st.CacheHits, st.CacheMisses)

	// Close and reopen: the store rebuilds its indexes by scanning the
	// slabs (§5.6) — no log replay.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db2, err := kvell.Open(kvell.Options{Path: path, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	if _, ok, _ := db2.Get([]byte("user17")); ok {
		log.Fatal("deleted key survived recovery")
	}
	if v, ok, _ := db2.Get([]byte("user99")); ok {
		fmt.Printf("after recovery: user99 -> %s\n", v)
	}
}
