// Simulate: run KVell programmatically inside the discrete-event simulator
// on a calibrated Intel Optane 905P model — the paper's Config-Optane — and
// print throughput, latency and device/CPU utilization. This is the
// programmatic form of what cmd/kvell-bench does for every table and
// figure.
//
//	go run ./examples/simulate
package main

import (
	"fmt"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/harness"
	"kvell/internal/stats"
	"kvell/internal/ycsb"
)

func main() {
	const records = 50_000
	fmt.Println("simulating KVell on Config-Optane (8 cores), YCSB A uniform, 1KB items")
	res := harness.Run(harness.Spec{
		Name:    "example",
		Seed:    1,
		Engine:  harness.KVell,
		Profile: device.Optane(),
		Records: records,
		Gen: func(seed int64) harness.Generator {
			return ycsb.NewGenerator(ycsb.Core('A'), ycsb.Uniform, records, 1024, seed)
		},
		Warmup:   250 * env.Millisecond,
		Duration: env.Second,
		Bucket:   125 * env.Millisecond,
	})

	fmt.Printf("throughput: %s ops/s (paper: ~420K, 98%% of device IOPS)\n",
		stats.FmtRate(res.Throughput))
	fmt.Printf("latency:    mean=%s p99=%s max=%s (paper: p99 2.4ms, max 3.9ms)\n",
		stats.FmtDur(res.Lat.Mean()), stats.FmtDur(res.Lat.Percentile(0.99)), stats.FmtDur(res.Lat.Max()))
	fmt.Printf("CPU:        %.0f%% busy (paper: not CPU-bound, ~40%% busy + waiting)\n",
		100*res.CPUUtil.MeanFraction(1))
	c := res.Disks[0].Counters()
	fmt.Printf("device:     %d reads, %d writes (%.2f I/Os per request)\n",
		c.ReadOps, c.WriteOps, float64(c.TotalOps())/float64(res.Ops))
}
