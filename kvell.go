// Package kvell is a persistent key-value store for fast NVMe SSDs,
// reproducing the design of "KVell: the Design and Implementation of a Fast
// Persistent Key-Value Store" (Lepers, Balmau, Gupta, Zwaenepoel, SOSP
// 2019).
//
// The design in one paragraph (§4 of the paper): worker threads share
// nothing — each owns a shard of the key space with its own in-memory
// B-tree index, page cache, free lists and size-classed slab files; items
// are stored unsorted at their final location on disk; I/O is issued in
// batches to keep the device queues full without syscall overhead; and
// there is no commit log — an update is acknowledged only once it is
// durable at its final location. Scans are served by briefly consulting
// each worker's in-memory index and fetching items by location.
//
// This package is the public, real-runtime API: it stores data in an
// ordinary file (or in memory) using goroutine workers. The same engine
// runs inside a discrete-event simulator to regenerate the paper's
// evaluation; see the cmd/kvell-bench tool and DESIGN.md.
//
// Basic usage:
//
//	db, err := kvell.Open(kvell.Options{Path: "data.kvell"})
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("key"), []byte("value"))
//	v, ok, _ := db.Get([]byte("key"))
//	items, _ := db.Scan([]byte("a"), 100)
package kvell

import (
	"errors"
	"fmt"
	"sync"

	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
)

// Options configure a store.
type Options struct {
	// Path is the backing file. Empty means an in-memory store (useful
	// for tests; nothing survives Close).
	Path string
	// Workers is the number of shared-nothing worker goroutines
	// (default 4). Requests are routed to workers by key hash.
	Workers int
	// CacheBytes bounds the internal page caches (default 64MB).
	CacheBytes int64
	// BatchSize is the I/O batch per worker (default 64, as in the
	// paper).
	BatchSize int
	// SyncWrites makes every acknowledged update durable via fsync before
	// its callback runs (the paper's guarantee). Off by default because
	// it is extremely slow on ordinary file systems; crash-consistency is
	// still maintained by the recovery scan.
	SyncWrites bool
	// DisableRecovery skips the §5.6 recovery scan on open (use only for
	// a file known to be empty).
	DisableRecovery bool
}

// DB is a KVell store.
type DB struct {
	//kvell:lint-ignore nogoroutine the public API runs on the real runtime; this mutex only guards Open/Close state
	mu     sync.Mutex
	e      *env.RealEnv
	st     *core.Store
	disk   *device.RealDisk
	fstore device.Store
	ctx    clientCtx
	closed bool
}

// clientCtx is the env context used for public API calls (the calling
// goroutine acts as a client thread).
type clientCtx struct{ e *env.RealEnv }

func (c clientCtx) Now() env.Time    { return c.e.Now() }
func (c clientCtx) CPU(env.Time)     {}
func (c clientCtx) Sleep(d env.Time) {}
func (c clientCtx) SetTrace(any)     {}
func (c clientCtx) Trace() any       { return nil }

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvell: store is closed")

// Open opens (creating or recovering) a store.
func Open(o Options) (*DB, error) {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	var store device.Store
	if o.Path == "" {
		store = device.NewMemStore()
		o.DisableRecovery = true
	} else {
		fs, err := device.OpenFileStore(o.Path)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	e := env.NewReal()
	disk := device.NewRealDisk(store, o.Workers*2, o.SyncWrites)
	cfg := core.DefaultConfig(disk)
	cfg.Workers = o.Workers
	cfg.BatchSize = o.BatchSize
	cfg.PageCachePages = int(o.CacheBytes / device.PageSize)
	cfg.WorkerRegionPages = 1 << 22 // keep file offsets modest (16GB/worker)
	st, err := core.Open(e, cfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	db := &DB{e: e, st: st, disk: disk, fstore: store, ctx: clientCtx{e: e}}
	if !o.DisableRecovery {
		errCh := make(chan error, 1)
		e.Go("recovery", func(c env.Ctx) { errCh <- st.Recover(c) })
		if err := <-errCh; err != nil {
			store.Close()
			return nil, fmt.Errorf("kvell: recovery failed: %w", err)
		}
	}
	st.Start()
	return db, nil
}

func (db *DB) check() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return nil
}

// Put durably stores value under key. Per the paper's §4.4, the write is
// acknowledged only once it sits at its final location on disk.
func (db *DB) Put(key, value []byte) error {
	if err := db.check(); err != nil {
		return err
	}
	db.st.Put(db.ctx, key, value)
	return nil
}

// Get returns the most recent value of key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	if err := db.check(); err != nil {
		return nil, false, err
	}
	v, ok := db.st.Get(db.ctx, key)
	return v, ok, nil
}

// Delete removes key, reporting whether it existed.
func (db *DB) Delete(key []byte) (bool, error) {
	if err := db.check(); err != nil {
		return false, err
	}
	return db.st.Delete(db.ctx, key), nil
}

// Item is a key-value pair returned by scans.
type Item = kv.Item

// Scan returns up to count items with key >= start, in ascending key
// order (§5.5: the scanning thread merges the per-worker indexes and then
// fetches items by location).
func (db *DB) Scan(start []byte, count int) ([]Item, error) {
	if err := db.check(); err != nil {
		return nil, err
	}
	return db.st.ScanN(db.ctx, start, count), nil
}

// ScanRange returns all items with start <= key < end in key order.
func (db *DB) ScanRange(start, end []byte) ([]Item, error) {
	if err := db.check(); err != nil {
		return nil, err
	}
	return db.st.ScanRange(db.ctx, start, end), nil
}

// Stats reports store counters.
type Stats struct {
	Items       int64
	IndexBytes  int64
	CacheHits   int64
	CacheMisses int64
	Reads       int64
	Writes      int64
}

// Stats returns a snapshot of store statistics.
func (db *DB) Stats() Stats {
	s := db.st.Stats()
	c := db.disk.Counters()
	return Stats{
		Items:       s.Items,
		IndexBytes:  s.IndexBytes,
		CacheHits:   s.CacheHits,
		CacheMisses: s.CacheMisses,
		Reads:       c.ReadOps,
		Writes:      c.WriteOps,
	}
}

// Close stops the workers and closes the backing file. Pending operations
// complete first.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	db.st.Stop(db.ctx)
	db.e.Wait()
	db.disk.Close()
	return db.fstore.Close()
}
